/**
 * @file
 * Tests for src/store: SimStats codec round-trips, segment
 * persistence, crash-tail recovery, schema-hash rejection, and the
 * engine's warm-start-from-store bit-identity.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "src/api/engine.hh"
#include "src/store/result_store.hh"
#include "src/store/stats_codec.hh"
#include "src/workload/suite.hh"

namespace mtv
{
namespace
{

constexpr double testScale = 2e-5;

std::string
tempDir(const char *name)
{
    const auto path = std::filesystem::temp_directory_path() / name;
    std::filesystem::remove_all(path);
    return path.string();
}

/** A SimStats exercising every serialized field. */
SimStats
sampleStats()
{
    SimStats s;
    s.cycles = 0x1234567890abcdefull;
    s.memRequests = 42;
    s.vecOpsFu1 = 7;
    s.vecOpsFu2 = 9;
    s.dispatches = 1000;
    s.decodeIdle = 77;
    s.decoupledSlips = 3;
    s.memPorts = 3;
    s.fu1BusyCycles = 11;
    s.fu2BusyCycles = 12;
    s.ldBusyCycles = 13;
    for (int i = 0; i < numFuStates; ++i)
        s.stateHist[i] = 100 + i;
    ThreadStats t0;
    t0.program = "swm256";
    t0.instructions = 500;
    t0.scalarInstructions = 100;
    t0.vectorInstructions = 400;
    t0.runsCompleted = 2;
    t0.instructionsThisRun = 33;
    t0.lastCompletion = 999;
    for (size_t i = 0; i < t0.blocked.size(); ++i)
        t0.blocked[i] = i * 11;
    s.threads.push_back(t0);
    ThreadStats t1;
    t1.program = "hydro2d";
    s.threads.push_back(t1);
    JobRecord job;
    job.program = "tomcatv";
    job.context = 2;
    job.startCycle = 10;
    job.endCycle = 20;
    s.jobs.push_back(job);
    return s;
}

// ---------------------------------------------------------------------
// Codec
// ---------------------------------------------------------------------

TEST(StatsCodec, RoundTripPreservesEveryField)
{
    const SimStats original = sampleStats();
    const std::string blob = serializeSimStats(original);
    const SimStats back = deserializeSimStats(blob);
    // Canonical encoding: equality of blobs is equality of stats.
    EXPECT_EQ(serializeSimStats(back), blob);
    EXPECT_EQ(back.cycles, original.cycles);
    EXPECT_EQ(back.memPorts, original.memPorts);
    ASSERT_EQ(back.threads.size(), 2u);
    EXPECT_EQ(back.threads[0].program, "swm256");
    EXPECT_EQ(back.threads[0].blocked, original.threads[0].blocked);
    ASSERT_EQ(back.jobs.size(), 1u);
    EXPECT_EQ(back.jobs[0].program, "tomcatv");
    EXPECT_EQ(back.jobs[0].endCycle, 20u);
}

TEST(StatsCodec, EncodingIsDeterministic)
{
    EXPECT_EQ(serializeSimStats(sampleStats()),
              serializeSimStats(sampleStats()));
}

TEST(StatsCodecDeath, TruncatedBlobRejected)
{
    const std::string blob = serializeSimStats(sampleStats());
    EXPECT_EXIT(
        deserializeSimStats(blob.substr(0, blob.size() / 2)),
        testing::ExitedWithCode(1), "truncated");
}

TEST(StatsCodecDeath, VersionMismatchRejected)
{
    std::string blob = serializeSimStats(sampleStats());
    blob[0] = static_cast<char>(statsCodecVersion + 1);
    EXPECT_EXIT(deserializeSimStats(blob),
                testing::ExitedWithCode(1), "codec version");
}

TEST(StatsCodecDeath, TrailingBytesRejected)
{
    std::string blob = serializeSimStats(sampleStats());
    blob += "xx";
    EXPECT_EXIT(deserializeSimStats(blob),
                testing::ExitedWithCode(1), "trailing");
}

TEST(StatsCodec, HexRoundTrip)
{
    const std::string data("\x00\x01\xfe\xff hi", 7);
    EXPECT_EQ(hexDecode(hexEncode(data)), data);
    EXPECT_EQ(hexEncode(std::string("\xab", 1)), "ab");
}

TEST(StatsCodecDeath, HexRejectsBadInput)
{
    EXPECT_EXIT(hexDecode("abc"), testing::ExitedWithCode(1),
                "odd-length");
    EXPECT_EXIT(hexDecode("zz"), testing::ExitedWithCode(1),
                "invalid hex");
}

TEST(StatsCodec, SchemaHashIsStableWithinProcess)
{
    EXPECT_EQ(storeSchemaHash(), storeSchemaHash());
    EXPECT_NE(storeSchemaHash(), 0u);
}

// ---------------------------------------------------------------------
// ResultStore persistence
// ---------------------------------------------------------------------

TEST(ResultStore, PersistsAcrossSessions)
{
    const std::string dir = tempDir("mtv_store_persist");
    const SimStats stats = sampleStats();
    {
        ResultStore store(dir);
        EXPECT_EQ(store.size(), 0u);
        EXPECT_EQ(store.load("key-a"), nullptr);
        store.store("key-a", stats);
        store.store("key-b", stats);
        store.store("key-a", stats);  // duplicate: no-op
        EXPECT_EQ(store.size(), 2u);
        EXPECT_EQ(store.stats().appends, 2u);
    }
    {
        ResultStore store(dir);
        EXPECT_EQ(store.size(), 2u);
        EXPECT_EQ(store.stats().loadedRecords, 2u);
        EXPECT_EQ(store.stats().droppedRecords, 0u);
        auto loaded = store.load("key-a");
        ASSERT_NE(loaded, nullptr);
        EXPECT_EQ(serializeSimStats(*loaded),
                  serializeSimStats(stats));
        EXPECT_EQ(store.stats().hits, 1u);
    }
    std::filesystem::remove_all(dir);
}

TEST(ResultStore, EmptySessionLeavesNoSegmentBehind)
{
    const std::string dir = tempDir("mtv_store_empty");
    { ResultStore store(dir); }
    size_t segments = 0;
    for (const auto &entry :
         std::filesystem::directory_iterator(dir)) {
        if (entry.path().extension() == ".mtvs")
            ++segments;
    }
    EXPECT_EQ(segments, 0u);
    std::filesystem::remove_all(dir);
}

TEST(ResultStoreDeath, SecondWriterRejected)
{
    const std::string dir = tempDir("mtv_store_lock");
    ResultStore store(dir);
    EXPECT_EXIT(ResultStore second(dir), testing::ExitedWithCode(1),
                "locked by another");
    std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------------
// Crash recovery and rejection
// ---------------------------------------------------------------------

/** Path of the single segment in @p dir (fails the test if != 1). */
std::string
onlySegment(const std::string &dir)
{
    std::string found;
    int count = 0;
    for (const auto &entry :
         std::filesystem::directory_iterator(dir)) {
        if (entry.path().extension() == ".mtvs") {
            found = entry.path().string();
            ++count;
        }
    }
    EXPECT_EQ(count, 1);
    return found;
}

TEST(ResultStore, TruncatedTailRecovered)
{
    const std::string dir = tempDir("mtv_store_trunc");
    {
        ResultStore store(dir);
        store.store("key-a", sampleStats());
        store.store("key-b", sampleStats());
    }
    // Chop into the middle of the last record — a crash mid-append.
    const std::string segment = onlySegment(dir);
    const auto size = std::filesystem::file_size(segment);
    std::filesystem::resize_file(segment, size - 7);
    {
        ResultStore store(dir);
        EXPECT_EQ(store.size(), 1u);
        EXPECT_NE(store.load("key-a"), nullptr);
        EXPECT_EQ(store.load("key-b"), nullptr);
        EXPECT_EQ(store.stats().droppedRecords, 1u);
        // The recovered store accepts the re-run result again.
        store.store("key-b", sampleStats());
    }
    {
        ResultStore store(dir);
        EXPECT_EQ(store.size(), 2u);
    }
    std::filesystem::remove_all(dir);
}

TEST(ResultStore, ChecksumFailureDropsTail)
{
    const std::string dir = tempDir("mtv_store_corrupt");
    {
        ResultStore store(dir);
        store.store("key-a", sampleStats());
    }
    const std::string segment = onlySegment(dir);
    // Flip one payload byte (the file tail) behind the checksum.
    std::fstream f(segment,
                   std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(-3, std::ios::end);
    f.put('\x5a');
    f.close();
    {
        ResultStore store(dir);
        EXPECT_EQ(store.size(), 0u);
        EXPECT_EQ(store.stats().droppedRecords, 1u);
    }
    std::filesystem::remove_all(dir);
}

TEST(ResultStore, SchemaMismatchRejectsSegment)
{
    const std::string dir = tempDir("mtv_store_schema");
    {
        ResultStore store(dir);
        store.store("key-a", sampleStats());
    }
    const std::string segment = onlySegment(dir);
    // Rewrite the header's schema hash (bytes 8..15).
    std::fstream f(segment,
                   std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(8, std::ios::beg);
    for (int i = 0; i < 8; ++i)
        f.put('\x77');
    f.close();
    {
        ResultStore store(dir);
        EXPECT_EQ(store.size(), 0u);
        EXPECT_EQ(store.stats().staleSegments, 1u);
        EXPECT_EQ(store.stats().droppedRecords, 0u);
    }
    std::filesystem::remove_all(dir);
}

TEST(ResultStore, ForeignFileRejectedAsBadSegment)
{
    const std::string dir = tempDir("mtv_store_badmagic");
    { ResultStore store(dir); }
    std::ofstream junk(dir + "/seg-000099.mtvs", std::ios::binary);
    junk << "this is not a segment";
    junk.close();
    {
        ResultStore store(dir);
        EXPECT_EQ(store.stats().badSegments, 1u);
        EXPECT_EQ(store.size(), 0u);
    }
    std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------------
// Engine warm start through the store
// ---------------------------------------------------------------------

/** The sweep both engine sessions run: group (with its truncated F_i
 *  reference terms), single and job-queue modes. */
std::vector<RunSpec>
warmStartSpecs()
{
    std::vector<RunSpec> specs;
    specs.push_back(RunSpec::group({"trfd", "swm256"},
                                   MachineParams::multithreaded(2),
                                   testScale));
    specs.push_back(RunSpec::single(
        "dyfesm", MachineParams::reference(), testScale));
    specs.push_back(RunSpec::jobQueue(
        {"trfd", "dyfesm"}, MachineParams::multithreaded(2),
        testScale));
    return specs;
}

TEST(StoreBackedEngine, WarmStartIsBitIdentical)
{
    const std::string dir = tempDir("mtv_store_warm");
    const std::vector<RunSpec> specs = warmStartSpecs();

    // Cold baseline without any store.
    std::vector<RunResult> cold;
    {
        ExperimentEngine plain;
        cold = plain.runAll(specs);
    }

    // Session 1: simulate and write through.
    {
        EngineOptions options;
        options.backend = std::make_shared<ResultStore>(dir);
        ExperimentEngine engine(options);
        const auto results = engine.runAll(specs);
        EXPECT_EQ(engine.storeHits(), 0u);
        for (size_t i = 0; i < specs.size(); ++i) {
            EXPECT_FALSE(results[i].fromStore);
            EXPECT_EQ(serializeSimStats(results[i].stats),
                      serializeSimStats(cold[i].stats));
        }
    }

    // Session 2 (fresh process state): everything — including the
    // truncated F_i reference runs of the group accounting — must be
    // served from disk, bit-identical.
    {
        auto store = std::make_shared<ResultStore>(dir);
        EngineOptions options;
        options.backend = store;
        ExperimentEngine engine(options);
        const auto warm = engine.runAll(specs);
        for (size_t i = 0; i < specs.size(); ++i) {
            EXPECT_TRUE(warm[i].fromStore)
                << specs[i].canonical();
            EXPECT_EQ(serializeSimStats(warm[i].stats),
                      serializeSimStats(cold[i].stats));
            EXPECT_EQ(warm[i].speedup, cold[i].speedup);
            EXPECT_EQ(warm[i].mthOccupation, cold[i].mthOccupation);
            EXPECT_EQ(warm[i].refVopc, cold[i].refVopc);
        }
        // No simulation happened: every backend miss would have
        // appended a fresh record.
        EXPECT_EQ(store->stats().appends, 0u);
        EXPECT_GT(engine.storeHits(), 0u);
    }
    std::filesystem::remove_all(dir);
}

TEST(StoreBackedEngine, RecoveredStoreResimulatesOnlyTheLostTail)
{
    const std::string dir = tempDir("mtv_store_warmtrunc");
    const std::vector<RunSpec> specs = warmStartSpecs();
    {
        EngineOptions options;
        options.backend = std::make_shared<ResultStore>(dir);
        ExperimentEngine engine(options);
        engine.runAll(specs);
    }
    // Kill-between-sweeps: the segment loses its mid-append tail.
    const std::string segment = onlySegment(dir);
    std::filesystem::resize_file(
        segment, std::filesystem::file_size(segment) - 11);
    {
        auto store = std::make_shared<ResultStore>(dir);
        const uint64_t recovered = store->stats().loadedRecords;
        EXPECT_GT(recovered, 0u);
        EXPECT_EQ(store->stats().droppedRecords, 1u);
        EngineOptions options;
        options.backend = store;
        ExperimentEngine engine(options);
        const auto warm = engine.runAll(specs);
        // Only the one lost record was re-simulated and re-appended.
        EXPECT_EQ(store->stats().appends, 1u);
        ExperimentEngine plain;
        const auto cold = plain.runAll(specs);
        for (size_t i = 0; i < specs.size(); ++i) {
            EXPECT_EQ(serializeSimStats(warm[i].stats),
                      serializeSimStats(cold[i].stats));
        }
    }
    std::filesystem::remove_all(dir);
}

} // namespace
} // namespace mtv
