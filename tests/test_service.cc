/**
 * @file
 * Tests for src/service: the JSON codec, the protocol encoding, the
 * ScopedFatalAsException guard, and a live in-process mtvd loopback —
 * daemon results must be bit-identical to in-process runs, malformed
 * client input must be answered (not crash the daemon), and request
 * batches must stream back in submission order.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <thread>

#include <sys/socket.h>
#include <unistd.h>

#include "src/api/engine.hh"
#include "src/common/logging.hh"
#include "src/service/json.hh"
#include "src/service/server.hh"
#include "src/store/stats_codec.hh"
#include "src/workload/suite.hh"

namespace mtv
{
namespace
{

constexpr double testScale = 2e-5;

// ---------------------------------------------------------------------
// Json
// ---------------------------------------------------------------------

TEST(Json, DumpParseRoundTrip)
{
    Json obj = Json::object();
    obj.set("op", "run");
    obj.set("quiet", true);
    obj.set("n", 42);
    obj.set("x", 1.5);
    obj.set("nothing", Json());
    Json arr = Json::array();
    arr.push("a").push(Json(7)).push(false);
    obj.set("list", std::move(arr));

    Json back;
    std::string error;
    ASSERT_TRUE(Json::parse(obj.dump(), &back, &error)) << error;
    EXPECT_EQ(back.getString("op"), "run");
    EXPECT_TRUE(back.getBool("quiet"));
    EXPECT_EQ(back.get("n").asU64(), 42u);
    EXPECT_DOUBLE_EQ(back.get("x").asNumber(), 1.5);
    EXPECT_TRUE(back.get("nothing").isNull());
    ASSERT_EQ(back.get("list").asArray().size(), 3u);
    EXPECT_EQ(back.get("list").asArray()[0].asString(), "a");
    EXPECT_FALSE(back.get("list").asArray()[2].asBool());
    // Canonical re-dump.
    EXPECT_EQ(back.dump(), obj.dump());
}

TEST(Json, StringEscapes)
{
    Json s(std::string("line\n\"quoted\"\ttab\\slash"));
    const std::string dumped = s.dump();
    EXPECT_EQ(dumped.find('\n'), std::string::npos);
    Json back;
    std::string error;
    ASSERT_TRUE(Json::parse(dumped, &back, &error)) << error;
    EXPECT_EQ(back.asString(), s.asString());
}

TEST(Json, ParseRejectsMalformedInput)
{
    Json out;
    std::string error;
    EXPECT_FALSE(Json::parse("{\"a\":", &out, &error));
    EXPECT_FALSE(Json::parse("[1,2,]", &out, &error));
    EXPECT_FALSE(Json::parse("{\"a\":1} trailing", &out, &error));
    EXPECT_FALSE(Json::parse("nope", &out, &error));
    EXPECT_FALSE(Json::parse("", &out, &error));
    EXPECT_NE(error.find("JSON parse error"), std::string::npos);
}

TEST(Json, ParsesNestedStructures)
{
    Json out;
    std::string error;
    ASSERT_TRUE(Json::parse(
        "  {\"a\": [1, {\"b\": \"\\u0041x\"}], \"c\": -2.5e3} ", &out,
        &error))
        << error;
    EXPECT_EQ(out.get("a").asArray()[1].getString("b"), "Ax");
    EXPECT_DOUBLE_EQ(out.getNumber("c"), -2500.0);
}

// ---------------------------------------------------------------------
// ScopedFatalAsException
// ---------------------------------------------------------------------

TEST(FatalScope, FatalThrowsInsideScope)
{
    ScopedFatalAsException scope;
    EXPECT_THROW(fatal("boom %d", 7), FatalError);
    try {
        fatal("boom %d", 7);
    } catch (const FatalError &e) {
        EXPECT_STREQ(e.what(), "boom 7");
    }
}

TEST(FatalScopeDeath, FatalStillExitsOutsideScope)
{
    EXPECT_EXIT(fatal("bye"), testing::ExitedWithCode(1), "bye");
}

// ---------------------------------------------------------------------
// Protocol encoding
// ---------------------------------------------------------------------

TEST(Protocol, ResultLineCarriesLosslessBlob)
{
    ExperimentEngine engine;
    const RunSpec spec = RunSpec::single(
        "trfd", MachineParams::reference(), testScale);
    const RunResult result = engine.run(spec);
    const Json line = resultToJson(result, 7, 3, /*includeBlob=*/true);
    EXPECT_EQ(line.get("id").asU64(), 7u);
    EXPECT_EQ(line.get("seq").asU64(), 3u);
    EXPECT_EQ(line.getString("spec"), spec.canonical());
    const SimStats decoded =
        deserializeSimStats(hexDecode(line.getString("blob")));
    EXPECT_EQ(serializeSimStats(decoded),
              serializeSimStats(result.stats));

    const Json quiet =
        resultToJson(result, 0, 0, /*includeBlob=*/false);
    EXPECT_FALSE(quiet.has("blob"));
}

// ---------------------------------------------------------------------
// Live daemon loopback
// ---------------------------------------------------------------------

/** An MtvService on a temp socket, served from a background thread. */
class ServiceFixture : public testing::Test
{
  protected:
    void
    SetUp() override
    {
        socketPath_ =
            (std::filesystem::temp_directory_path() /
             ("mtv_test_service_" + std::to_string(::getpid()) +
              ".sock"))
                .string();
        ServiceOptions options;
        options.socketPath = socketPath_;
        options.workers = 2;
        service_ = std::make_unique<MtvService>(options);
        serveThread_ =
            std::thread([this] { service_->serve(); });
    }

    void
    TearDown() override
    {
        service_->stop();
        serveThread_.join();
        service_.reset();
    }

    LineChannel
    connect()
    {
        std::string error;
        const int fd = connectToDaemon(socketPath_, &error);
        EXPECT_GE(fd, 0) << error;
        return LineChannel(fd);
    }

    Json
    roundTrip(LineChannel &channel, const Json &request)
    {
        EXPECT_TRUE(channel.writeLine(request.dump()));
        std::string line;
        EXPECT_TRUE(channel.readLine(&line));
        Json response;
        std::string error;
        EXPECT_TRUE(Json::parse(line, &response, &error)) << error;
        return response;
    }

    std::string socketPath_;
    std::unique_ptr<MtvService> service_;
    std::thread serveThread_;
};

TEST_F(ServiceFixture, PingPongs)
{
    LineChannel channel = connect();
    Json ping = Json::object();
    ping.set("op", "ping");
    const Json response = roundTrip(channel, ping);
    EXPECT_TRUE(response.getBool("ok"));
    EXPECT_TRUE(response.getBool("pong"));
    EXPECT_EQ(response.get("protocol").asU64(),
              static_cast<uint64_t>(serviceProtocolVersion));
}

TEST_F(ServiceFixture, RunBatchStreamsInOrderAndBitIdentical)
{
    // The daemon's answers must match a plain in-process engine.
    std::vector<RunSpec> specs;
    specs.push_back(RunSpec::group({"trfd", "swm256"},
                                   MachineParams::multithreaded(2),
                                   testScale));
    specs.push_back(RunSpec::single(
        "dyfesm", MachineParams::reference(), testScale));
    specs.push_back(specs[1]);  // duplicate: served by the cache
    ExperimentEngine local;
    const auto expected = local.runAll(specs);

    LineChannel channel = connect();
    Json request = Json::object();
    request.set("op", "run");
    Json specArray = Json::array();
    for (const RunSpec &spec : specs)
        specArray.push(spec.canonical());
    request.set("specs", std::move(specArray));
    ASSERT_TRUE(channel.writeLine(request.dump()));

    for (size_t i = 0; i < specs.size(); ++i) {
        std::string line;
        ASSERT_TRUE(channel.readLine(&line));
        Json result;
        std::string error;
        ASSERT_TRUE(Json::parse(line, &result, &error)) << error;
        ASSERT_FALSE(result.has("error"))
            << result.getString("error");
        EXPECT_EQ(result.get("seq").asU64(), i);
        EXPECT_EQ(result.getString("spec"), specs[i].canonical());
        const SimStats stats =
            deserializeSimStats(hexDecode(result.getString("blob")));
        EXPECT_EQ(serializeSimStats(stats),
                  serializeSimStats(expected[i].stats));
        if (specs[i].mode == SpecMode::Group) {
            EXPECT_DOUBLE_EQ(result.getNumber("speedup"),
                             expected[i].speedup);
        }
    }
    std::string line;
    ASSERT_TRUE(channel.readLine(&line));
    Json done;
    std::string error;
    ASSERT_TRUE(Json::parse(line, &done, &error)) << error;
    EXPECT_TRUE(done.getBool("done"));
    EXPECT_EQ(done.get("count").asU64(), specs.size());
    // The duplicate third spec was coalesced/served by the cache.
    EXPECT_GE(done.get("cacheServed").asU64(), 1u);
}

TEST_F(ServiceFixture, MalformedInputAnswersWithoutDying)
{
    LineChannel channel = connect();

    // Broken JSON.
    ASSERT_TRUE(channel.writeLine("{not json"));
    std::string line;
    ASSERT_TRUE(channel.readLine(&line));
    EXPECT_NE(line.find("error"), std::string::npos);

    // Valid JSON, unknown op.
    Json bad = Json::object();
    bad.set("op", "explode");
    Json response = roundTrip(channel, bad);
    EXPECT_TRUE(response.has("error"));

    // Valid op, malformed spec (unknown program) — validation runs
    // through fatal() and must come back as an error line.
    Json run = Json::object();
    run.set("op", "run");
    Json specArray = Json::array();
    specArray.push("mode=single;scale=0.001;max=0;"
                   "programs=doesnotexist;machine=contexts=1");
    run.set("specs", std::move(specArray));
    response = roundTrip(channel, run);
    EXPECT_TRUE(response.has("error"));

    // The daemon survived all of it.
    Json ping = Json::object();
    ping.set("op", "ping");
    EXPECT_TRUE(roundTrip(channel, ping).getBool("pong"));
}

TEST_F(ServiceFixture, StatsAndClear)
{
    LineChannel channel = connect();
    Json run = Json::object();
    run.set("op", "run");
    Json specArray = Json::array();
    specArray.push(RunSpec::single("trfd", MachineParams::reference(),
                                   testScale)
                       .canonical());
    run.set("specs", std::move(specArray));
    run.set("quiet", true);
    ASSERT_TRUE(channel.writeLine(run.dump()));
    std::string line;
    ASSERT_TRUE(channel.readLine(&line));  // the result line
    ASSERT_TRUE(channel.readLine(&line));  // the done line

    Json statsRequest = Json::object();
    statsRequest.set("op", "stats");
    Json stats = roundTrip(channel, statsRequest);
    EXPECT_TRUE(stats.getBool("ok"));
    EXPECT_EQ(stats.get("cache").get("size").asU64(), 1u);
    EXPECT_TRUE(stats.get("store").isNull());  // no --store configured

    Json clearRequest = Json::object();
    clearRequest.set("op", "clear");
    EXPECT_TRUE(roundTrip(channel, clearRequest).getBool("ok"));
    stats = roundTrip(channel, statsRequest);
    EXPECT_EQ(stats.get("cache").get("size").asU64(), 0u);
}

TEST_F(ServiceFixture, ConcurrentClientsShareOneEngine)
{
    const RunSpec spec = RunSpec::single(
        "swm256", MachineParams::reference(), testScale);
    auto clientRun = [this, &spec]() {
        LineChannel channel = connect();
        Json request = Json::object();
        request.set("op", "run");
        Json specArray = Json::array();
        specArray.push(spec.canonical());
        request.set("specs", std::move(specArray));
        ASSERT_TRUE(channel.writeLine(request.dump()));
        std::string line;
        ASSERT_TRUE(channel.readLine(&line));
        Json result;
        std::string error;
        ASSERT_TRUE(Json::parse(line, &result, &error)) << error;
        EXPECT_EQ(
            deserializeSimStats(hexDecode(result.getString("blob")))
                .cycles,
            ExperimentEngine().run(spec).stats.cycles);
    };
    std::thread a(clientRun), b(clientRun), c(clientRun);
    a.join();
    b.join();
    c.join();
    // Three identical requests; the engine simulated exactly once
    // (the rest were coalesced or cache-served).
    EXPECT_EQ(service_->engine().cacheMisses(), 1u);
    EXPECT_GE(service_->engine().cacheHits(), 2u);
}

// ---------------------------------------------------------------------
// Sweep op: server-side expansion, streaming, multiplexing
// ---------------------------------------------------------------------

TEST(Protocol, SweepRequestRoundTrip)
{
    SweepRequest request;
    request.family = "latency";
    request.scale = testScale;
    request.program = "swm256";
    request.contexts = 3;
    request.jobs = {"flo52", "trfd"};
    request.latencies = {1, 50, 100};
    const Json encoded = sweepRequestToJson(request);
    const SweepRequest back = sweepRequestFromJson(encoded);
    EXPECT_EQ(back.family, request.family);
    EXPECT_DOUBLE_EQ(back.scale, request.scale);
    EXPECT_EQ(back.program, request.program);
    EXPECT_EQ(back.contexts, request.contexts);
    EXPECT_EQ(back.jobs, request.jobs);
    EXPECT_EQ(back.latencies, request.latencies);

    SweepSlice slice;
    slice.label = "swm256";
    slice.contexts = 3;
    slice.first = 10;
    slice.count = 5;
    const SweepSlice sliceBack = sliceFromJson(sliceToJson(slice));
    EXPECT_EQ(sliceBack.label, "swm256");
    EXPECT_EQ(sliceBack.contexts, 3);
    EXPECT_EQ(sliceBack.first, 10u);
    EXPECT_EQ(sliceBack.count, 5u);
}

namespace
{

/** What one demultiplexed response stream accumulated. */
struct StreamTally
{
    size_t results = 0;
    size_t expected = 0;     ///< count from the ack
    size_t slices = 0;
    bool done = false;
    uint64_t clientDigest = 0xcbf29ce484222325ull;
    std::string serverDigest;
    std::vector<std::string> blobs;  ///< submission order
};

/** Send one sweep request with @p id on @p channel. */
void
sendSweep(LineChannel &channel, uint64_t id,
          const SweepRequest &request)
{
    Json line = sweepRequestToJson(request);
    line.set("op", "sweep");
    line.set("id", id);
    ASSERT_TRUE(channel.writeLine(line.dump()));
}

/**
 * Read response lines, demultiplexing by id, until every stream in
 * @p tallies is done. Verifies per-id seq ordering as it goes.
 */
void
demux(LineChannel &channel,
      std::unordered_map<uint64_t, StreamTally> &tallies)
{
    auto allDone = [&tallies] {
        for (const auto &[id, tally] : tallies) {
            if (!tally.done)
                return false;
        }
        return true;
    };
    while (!allDone()) {
        std::string text;
        ASSERT_TRUE(channel.readLine(&text));
        Json line;
        std::string error;
        ASSERT_TRUE(Json::parse(text, &line, &error)) << error;
        ASSERT_FALSE(line.has("error")) << line.getString("error");
        const uint64_t id = line.get("id").asU64();
        ASSERT_TRUE(tallies.count(id)) << "unknown stream " << id;
        StreamTally &tally = tallies[id];
        if (line.getBool("ack", false)) {
            tally.expected = line.get("count").asU64();
            tally.slices = line.get("slices").asArray().size();
            continue;
        }
        if (line.getBool("done", false)) {
            EXPECT_EQ(line.get("count").asU64(), tally.expected);
            tally.serverDigest = line.getString("digest");
            tally.done = true;
            continue;
        }
        // A result line: in submission order within its stream.
        EXPECT_EQ(line.get("seq").asU64(), tally.results);
        const std::string blob = hexDecode(line.getString("blob"));
        tally.clientDigest =
            fnv1a64(blob.data(), blob.size(), tally.clientDigest);
        tally.blobs.push_back(blob);
        ++tally.results;
    }
}

/** Hex form of a folded digest, as the done line carries it. */
std::string
digestHex(uint64_t digest)
{
    char text[17];
    std::snprintf(text, sizeof(text), "%016llx",
                  static_cast<unsigned long long>(digest));
    return text;
}

} // namespace

TEST_F(ServiceFixture, SweepOpExpandsServerSideAndStreams)
{
    SweepRequest request;
    request.family = "groupings";
    request.program = "trfd";
    request.contexts = 2;
    request.scale = testScale;

    // The reference expansion, computed locally.
    SweepBuilder local = expandSweep(request);
    ExperimentEngine localEngine;
    const auto expected = localEngine.runAll(local.specs());

    LineChannel channel = connect();
    sendSweep(channel, 42, request);
    std::unordered_map<uint64_t, StreamTally> tallies;
    tallies[42] = StreamTally();
    demux(channel, tallies);

    const StreamTally &tally = tallies[42];
    EXPECT_EQ(tally.expected, local.size());
    EXPECT_EQ(tally.results, expected.size());
    EXPECT_EQ(tally.slices, local.slices().size());
    // Bit-identical to the in-process run, point by point.
    for (size_t i = 0; i < expected.size(); ++i) {
        EXPECT_EQ(tally.blobs[i],
                  serializeSimStats(expected[i].stats))
            << "point " << i;
    }
    EXPECT_EQ(tally.serverDigest, digestHex(tally.clientDigest));
}

TEST_F(ServiceFixture, MultiplexedSweepsInterleaveOneConnection)
{
    // Two sweeps in flight on ONE connection: both must stream to
    // completion, each demultiplexed by id with its own seq order.
    SweepRequest first;
    first.family = "groupings";
    first.program = "trfd";
    first.contexts = 2;
    first.scale = testScale;
    SweepRequest second;
    second.family = "groupings";
    second.program = "swm256";
    second.contexts = 2;
    second.scale = testScale;

    LineChannel channel = connect();
    sendSweep(channel, 1, first);
    sendSweep(channel, 2, second);
    std::unordered_map<uint64_t, StreamTally> tallies;
    tallies[1] = StreamTally();
    tallies[2] = StreamTally();
    demux(channel, tallies);

    EXPECT_EQ(tallies[1].results, 5u);
    EXPECT_EQ(tallies[2].results, 5u);
    // Each stream's digest matches its own in-process run.
    for (const auto &[id, request] :
         std::vector<std::pair<uint64_t, SweepRequest>>{
             {1, first}, {2, second}}) {
        ExperimentEngine localEngine;
        uint64_t digest = 0xcbf29ce484222325ull;
        for (const RunResult &r :
             localEngine.runAll(expandSweep(request).specs())) {
            const std::string blob = serializeSimStats(r.stats);
            digest = fnv1a64(blob.data(), blob.size(), digest);
        }
        EXPECT_EQ(tallies[id].serverDigest, digestHex(digest))
            << "stream " << id;
    }
}

TEST_F(ServiceFixture, ConcurrentClientsOverlapSweepsAndCoalesce)
{
    // N clients race the same sweep: digests must be bit-identical,
    // and the duplicate points must cost ONE simulation (in-flight
    // coalescing), which the engine's counters expose.
    SweepRequest request;
    request.family = "groupings";
    request.program = "dyfesm";
    request.contexts = 2;
    request.scale = testScale;

    // The unique cacheable work of this sweep, measured locally.
    ExperimentEngine localEngine;
    localEngine.runAll(expandSweep(request).specs());
    const uint64_t uniqueMisses = localEngine.cacheMisses();

    constexpr int clients = 4;
    std::vector<std::string> digests(clients);
    std::vector<std::thread> pool;
    pool.reserve(clients);
    for (int c = 0; c < clients; ++c) {
        pool.emplace_back([this, &request, &digests, c] {
            LineChannel channel = connect();
            sendSweep(channel, 7, request);
            std::unordered_map<uint64_t, StreamTally> tallies;
            tallies[7] = StreamTally();
            demux(channel, tallies);
            digests[c] = tallies[7].serverDigest;
        });
    }
    for (auto &thread : pool)
        thread.join();

    for (int c = 1; c < clients; ++c)
        EXPECT_EQ(digests[c], digests[0]) << "client " << c;
    // Four overlapping copies of the sweep, one simulation each:
    // every duplicate lookup coalesced onto the first or hit the
    // completed cache.
    EXPECT_EQ(service_->engine().cacheMisses(), uniqueMisses);
    EXPECT_GE(service_->engine().cacheHits(),
              static_cast<uint64_t>(clients - 1) * 5);
    EXPECT_EQ(service_->completedPoints(),
              static_cast<uint64_t>(clients) * 5);
    EXPECT_EQ(service_->activeRequests(), 0u);
}

TEST_F(ServiceFixture, SweepErrorsAnswerWithoutKillingDaemon)
{
    LineChannel channel = connect();
    Json bad = Json::object();
    bad.set("op", "sweep");
    bad.set("id", 9);
    bad.set("family", "no-such-family");
    ASSERT_TRUE(channel.writeLine(bad.dump()));
    std::string text;
    ASSERT_TRUE(channel.readLine(&text));
    Json response;
    std::string error;
    ASSERT_TRUE(Json::parse(text, &response, &error)) << error;
    EXPECT_TRUE(response.has("error"));
    EXPECT_EQ(response.get("id").asU64(), 9u);

    // The error is STRUCTURED: the offending family and the
    // registered ones ride as fields, so fleet routers and scripts
    // can match on them instead of parsing prose.
    EXPECT_EQ(response.getString("badFamily"), "no-such-family");
    const auto &families = response.get("families").asArray();
    ASSERT_FALSE(families.empty());
    bool hasGroupings = false;
    for (const Json &family : families)
        hasGroupings = hasGroupings || family.asString() == "groupings";
    EXPECT_TRUE(hasGroupings);

    // The daemon survived and still serves this connection.
    Json ping = Json::object();
    ping.set("op", "ping");
    EXPECT_TRUE(roundTrip(channel, ping).getBool("pong"));
}

TEST_F(ServiceFixture, SweepPointsSubsetStreamsInGivenOrder)
{
    // The fleet scatter path: "points" selects global indices of the
    // server-side expansion, streamed back with subset-local seq
    // numbers in the given order.
    SweepRequest request;
    request.family = "groupings";
    request.program = "trfd";
    request.contexts = 2;
    request.scale = testScale;
    SweepBuilder local = expandSweep(request);
    ExperimentEngine localEngine;
    const auto expected = localEngine.runAll(local.specs());
    ASSERT_EQ(expected.size(), 5u);

    const std::vector<uint64_t> subset = {3, 0, 4};
    LineChannel channel = connect();
    Json line = sweepRequestToJson(request);
    line.set("op", "sweep");
    line.set("id", 5);
    Json points = Json::array();
    for (const uint64_t global : subset)
        points.push(global);
    line.set("points", std::move(points));
    ASSERT_TRUE(channel.writeLine(line.dump()));

    // The ack reports the subset size AND the full expansion size.
    std::string text;
    ASSERT_TRUE(channel.readLine(&text));
    Json ack;
    std::string error;
    ASSERT_TRUE(Json::parse(text, &ack, &error)) << error;
    ASSERT_TRUE(ack.getBool("ack", false)) << text;
    EXPECT_EQ(ack.get("count").asU64(), subset.size());
    EXPECT_EQ(ack.get("total").asU64(), expected.size());

    for (size_t i = 0; i < subset.size(); ++i) {
        ASSERT_TRUE(channel.readLine(&text));
        Json result;
        ASSERT_TRUE(Json::parse(text, &result, &error)) << error;
        ASSERT_FALSE(result.has("error"))
            << result.getString("error");
        EXPECT_EQ(result.get("seq").asU64(), i);
        // seq i of the stream is global point subset[i].
        EXPECT_EQ(result.getString("spec"),
                  local.specs()[subset[i]].canonical());
        EXPECT_EQ(hexDecode(result.getString("blob")),
                  serializeSimStats(expected[subset[i]].stats));
    }
    ASSERT_TRUE(channel.readLine(&text));
    Json done;
    ASSERT_TRUE(Json::parse(text, &done, &error)) << error;
    EXPECT_TRUE(done.getBool("done", false));
    EXPECT_EQ(done.get("count").asU64(), subset.size());

    // An out-of-range index is a request error, not a daemon death.
    Json bad = sweepRequestToJson(request);
    bad.set("op", "sweep");
    bad.set("id", 6);
    Json badPoints = Json::array();
    badPoints.push(uint64_t{999});
    bad.set("points", std::move(badPoints));
    const Json answer = roundTrip(channel, bad);
    EXPECT_TRUE(answer.has("error"));
    Json ping = Json::object();
    ping.set("op", "ping");
    EXPECT_TRUE(roundTrip(channel, ping).getBool("pong"));
}

// ---------------------------------------------------------------------
// Compare op: server-side cross-design tables (protocol v5)
// ---------------------------------------------------------------------

TEST(Protocol, CompareRowRoundTrip)
{
    CompareRow row;
    row.design = "mth4+rename4";
    row.contexts = 4;
    row.ports = 3;
    row.memLatency = 50;
    row.cycles = 123456;
    row.speedup = 1.75;
    row.occupation = 0.91;
    row.vopc = 2.5;
    const CompareRow back = compareRowFromJson(compareRowToJson(row));
    EXPECT_EQ(back.design, row.design);
    EXPECT_EQ(back.contexts, row.contexts);
    EXPECT_EQ(back.ports, row.ports);
    EXPECT_EQ(back.memLatency, row.memLatency);
    EXPECT_EQ(back.cycles, row.cycles);
    EXPECT_DOUBLE_EQ(back.speedup, row.speedup);
    EXPECT_DOUBLE_EQ(back.occupation, row.occupation);
    EXPECT_DOUBLE_EQ(back.vopc, row.vopc);

    ScopedFatalAsException scope;
    EXPECT_THROW(compareRowFromJson(Json::object()), FatalError);
}

TEST_F(ServiceFixture, CompareOpAggregatesCrossDesignTable)
{
    // The daemon expands the family, runs the same engine path a
    // sweep would, and answers ONE aggregated line whose rows and
    // digest must match the local computation bit-for-bit.
    SweepRequest request;
    request.family = "ext-compare";
    request.contexts = 2;
    request.jobs = {"flo52", "trfd"};
    request.scale = testScale;

    SweepBuilder local = expandSweep(request);
    ExperimentEngine localEngine;
    const auto expected = localEngine.runAll(local.specs());
    uint64_t digest = 0xcbf29ce484222325ull;
    for (const RunResult &r : expected) {
        const std::string blob = serializeSimStats(r.stats);
        digest = fnv1a64(blob.data(), blob.size(), digest);
    }
    const std::vector<CompareRow> localRows =
        compareDesigns(local.slices(), expected);

    LineChannel channel = connect();
    Json line = sweepRequestToJson(request);
    line.set("op", "compare");
    line.set("id", 11);
    ASSERT_TRUE(channel.writeLine(line.dump()));

    std::string text;
    ASSERT_TRUE(channel.readLine(&text));
    Json response;
    std::string error;
    ASSERT_TRUE(Json::parse(text, &response, &error)) << error;
    ASSERT_FALSE(response.has("error"))
        << response.getString("error");
    EXPECT_TRUE(response.getBool("ok", false));
    EXPECT_TRUE(response.getBool("compare", false));
    EXPECT_EQ(response.get("id").asU64(), 11u);
    EXPECT_EQ(response.getString("family"), "ext-compare");
    EXPECT_EQ(response.get("count").asU64(), local.size());
    EXPECT_EQ(response.getString("baseline"),
              local.slices()[0].label);
    // Digest semantics are identical to the equivalent sweep: folded
    // over the stats blobs in submission order.
    EXPECT_EQ(response.getString("digest"), digestHex(digest));

    const auto &rows = response.get("rows").asArray();
    ASSERT_EQ(rows.size(), localRows.size());
    for (size_t i = 0; i < rows.size(); ++i) {
        const CompareRow row = compareRowFromJson(rows[i]);
        EXPECT_EQ(row.design, localRows[i].design) << "row " << i;
        EXPECT_EQ(row.cycles, localRows[i].cycles) << "row " << i;
        EXPECT_DOUBLE_EQ(row.speedup, localRows[i].speedup)
            << "row " << i;
    }
    // The baseline row compares against itself.
    EXPECT_DOUBLE_EQ(compareRowFromJson(rows[0]).speedup, 1.0);
}

TEST_F(ServiceFixture, CompareRejectsUnknownAndNonParallelFamilies)
{
    LineChannel channel = connect();

    // Unknown family: same structured badFamily error as sweep.
    Json bad = Json::object();
    bad.set("op", "compare");
    bad.set("id", 21);
    bad.set("family", "no-such-family");
    const Json unknown = roundTrip(channel, bad);
    EXPECT_TRUE(unknown.has("error"));
    EXPECT_EQ(unknown.getString("badFamily"), "no-such-family");

    // A family whose slices are not design-parallel is rejected
    // BEFORE any simulation, with a structured notComparable field.
    SweepRequest grouping;
    grouping.family = "groupings";
    grouping.program = "trfd";
    grouping.contexts = 2;
    grouping.scale = testScale;
    Json line = sweepRequestToJson(grouping);
    line.set("op", "compare");
    line.set("id", 22);
    const Json answer = roundTrip(channel, line);
    EXPECT_TRUE(answer.has("error"));
    EXPECT_EQ(answer.getString("notComparable"), "groupings");

    // The daemon survived both rejections.
    Json ping = Json::object();
    ping.set("op", "ping");
    EXPECT_TRUE(roundTrip(channel, ping).getBool("pong"));
}

// ---------------------------------------------------------------------
// TCP transport
// ---------------------------------------------------------------------

TEST(TcpTransport, ServesTheSameProtocolAsTheUnixSocket)
{
    ServiceOptions options;
    options.socketPath =
        (std::filesystem::temp_directory_path() /
         ("mtv_test_tcp_" + std::to_string(::getpid()) + ".sock"))
            .string();
    options.tcpHost = "127.0.0.1";
    options.tcpPort = 0;  // ephemeral: the kernel picks, we read back
    options.workers = 2;
    MtvService service(options);
    ASSERT_GT(service.tcpPort(), 0);
    std::thread serveThread([&service] { service.serve(); });

    std::string error;
    const int fd = connectToEndpoint(
        Endpoint::tcp("127.0.0.1", service.tcpPort()), &error);
    ASSERT_GE(fd, 0) << error;
    LineChannel channel(fd);

    Json ping = Json::object();
    ping.set("op", "ping");
    ASSERT_TRUE(channel.writeLine(ping.dump()));
    std::string line;
    ASSERT_TRUE(channel.readLine(&line));
    Json pong;
    ASSERT_TRUE(Json::parse(line, &pong, &error)) << error;
    EXPECT_TRUE(pong.getBool("pong"));
    EXPECT_EQ(pong.get("protocol").asU64(),
              static_cast<uint64_t>(serviceProtocolVersion));

    // A run over TCP answers bit-identical to an in-process engine —
    // the transport changes nothing about the stream.
    const RunSpec spec = RunSpec::single(
        "trfd", MachineParams::reference(), testScale);
    Json request = Json::object();
    request.set("op", "run");
    Json specs = Json::array();
    specs.push(spec.canonical());
    request.set("specs", std::move(specs));
    ASSERT_TRUE(channel.writeLine(request.dump()));
    ASSERT_TRUE(channel.readLine(&line));
    Json result;
    ASSERT_TRUE(Json::parse(line, &result, &error)) << error;
    ASSERT_FALSE(result.has("error")) << result.getString("error");
    EXPECT_EQ(
        hexDecode(result.getString("blob")),
        serializeSimStats(ExperimentEngine().run(spec).stats));

    service.stop();
    serveThread.join();
}

// ---------------------------------------------------------------------
// Request lifecycle: cancel op, reaping on disconnect, fair lanes
// ---------------------------------------------------------------------

namespace
{

/** @p n distinct cheap single-mode specs (unique per @p latencyBase). */
std::vector<RunSpec>
distinctSpecs(int n, int latencyBase)
{
    std::vector<RunSpec> specs;
    specs.reserve(n);
    for (int i = 0; i < n; ++i) {
        MachineParams params = MachineParams::reference();
        params.memLatency = latencyBase + i;
        specs.push_back(RunSpec::single(i % 2 ? "swm256" : "trfd",
                                        params, testScale));
    }
    return specs;
}

/** A "run" request of @p specs tagged @p id. */
Json
runRequest(uint64_t id, const std::vector<RunSpec> &specs, bool quiet)
{
    Json request = Json::object();
    request.set("op", "run");
    request.set("id", id);
    request.set("quiet", quiet);
    Json specArray = Json::array();
    for (const RunSpec &spec : specs)
        specArray.push(spec.canonical());
    request.set("specs", std::move(specArray));
    return request;
}

} // namespace

TEST_F(ServiceFixture, CancelOpStopsInFlightBatch)
{
    // A fat batch on one connection...
    const auto specs = distinctSpecs(400, 10);
    LineChannel victim = connect();
    ASSERT_TRUE(victim.writeLine(runRequest(11, specs, true).dump()));
    // ...streaming for sure (first result arrived)...
    std::string line;
    ASSERT_TRUE(victim.readLine(&line));

    // ...is cancelled BY REQUEST ID from a different connection.
    LineChannel canceller = connect();
    Json cancel = Json::object();
    cancel.set("op", "cancel");
    cancel.set("id", 11);
    const Json answer = roundTrip(canceller, cancel);
    EXPECT_TRUE(answer.getBool("ok"));
    EXPECT_EQ(answer.get("cancelled").asU64(), 1u);

    // The victim's stream terminates with a cancelled done line.
    Json done;
    for (;;) {
        ASSERT_TRUE(victim.readLine(&line));
        std::string error;
        ASSERT_TRUE(Json::parse(line, &done, &error)) << error;
        ASSERT_FALSE(done.has("error")) << done.getString("error");
        if (done.getBool("done", false))
            break;
    }
    EXPECT_TRUE(done.getBool("cancelled"));
    EXPECT_LT(done.get("completed").asU64(), specs.size());

    // The queued remainder is skipped, never simulated: wait for the
    // lane to drain, then check the engine's books.
    for (int i = 0; i < 200 && service_->engine().queueDepth() > 0;
         ++i) {
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    EXPECT_EQ(service_->engine().queueDepth(), 0u);
    EXPECT_GT(service_->engine().cancelledRuns(), 0u);
    EXPECT_LT(service_->engine().cacheMisses(), specs.size());
    EXPECT_EQ(service_->cancelledBatches(), 1u);

    // Both connections (and the daemon) survived.
    Json ping = Json::object();
    ping.set("op", "ping");
    EXPECT_TRUE(roundTrip(victim, ping).getBool("pong"));
    EXPECT_TRUE(roundTrip(canceller, ping).getBool("pong"));
}

TEST_F(ServiceFixture, DisconnectMidSweepFreesQueuedPoints)
{
    // The ISSUE-5 acceptance scenario: a client vanishing mid-sweep
    // must free its queued points (they never simulate), while a
    // second client's concurrent sweep completes bit-identical to an
    // in-process run.
    const auto abandoned = distinctSpecs(300, 3000);
    {
        LineChannel victim = connect();
        ASSERT_TRUE(
            victim.writeLine(runRequest(1, abandoned, true).dump()));
        // One result proves the batch is streaming; then the client
        // dies without so much as a goodbye (socket closed by the
        // LineChannel destructor).
        std::string line;
        ASSERT_TRUE(victim.readLine(&line));
    }

    // A live client's sweep, concurrent with the reaping.
    SweepRequest request;
    request.family = "groupings";
    request.program = "trfd";
    request.contexts = 2;
    request.scale = testScale;
    LineChannel survivor = connect();
    sendSweep(survivor, 2, request);
    std::unordered_map<uint64_t, StreamTally> tallies;
    tallies[2] = StreamTally();
    demux(survivor, tallies);

    // Bit-identical to the in-process expansion of the same sweep.
    ExperimentEngine localEngine;
    uint64_t digest = 0xcbf29ce484222325ull;
    for (const RunResult &r :
         localEngine.runAll(expandSweep(request).specs())) {
        const std::string blob = serializeSimStats(r.stats);
        digest = fnv1a64(blob.data(), blob.size(), digest);
    }
    EXPECT_EQ(tallies[2].serverDigest, digestHex(digest));

    // Wait for the reap to settle, then prove the abandoned points
    // never simulated: far fewer misses than the abandoned batch
    // alone would have cost, and the reap counters show the kill.
    for (int i = 0; i < 500 && (service_->activeRequests() > 0 ||
                                service_->engine().queueDepth() > 0);
         ++i) {
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    EXPECT_EQ(service_->activeRequests(), 0u);
    EXPECT_EQ(service_->engine().queueDepth(), 0u);
    EXPECT_EQ(service_->reapedBatches(), 1u);
    EXPECT_GT(service_->engine().cancelledRuns() +
                  service_->engine().discardedTasks(),
              0u);
    EXPECT_LT(service_->engine().cacheMisses() +
                  service_->engine().uncachedRuns(),
              abandoned.size() / 2);
}

TEST_F(ServiceFixture, InteractiveRunNotBlockedBehindBigSweep)
{
    // Per-connection lanes + weighted round-robin: a 150-point batch
    // on one connection must not head-of-line-block a 1-point run on
    // another. Before the lanes this deadlocked on the global FIFO —
    // the interactive run waited out the whole sweep.
    const auto bulk = distinctSpecs(400, 6000);
    LineChannel sweeper = connect();
    ASSERT_TRUE(sweeper.writeLine(runRequest(7, bulk, true).dump()));
    std::string line;
    ASSERT_TRUE(sweeper.readLine(&line));  // the sweep is streaming

    const std::vector<RunSpec> one = {RunSpec::single(
        "dyfesm", MachineParams::reference(), testScale)};
    LineChannel interactive = connect();
    ASSERT_TRUE(
        interactive.writeLine(runRequest(8, one, false).dump()));
    Json done;
    for (;;) {
        ASSERT_TRUE(interactive.readLine(&line));
        std::string error;
        ASSERT_TRUE(Json::parse(line, &done, &error)) << error;
        ASSERT_FALSE(done.has("error")) << done.getString("error");
        if (done.getBool("done", false))
            break;
    }
    EXPECT_EQ(done.get("count").asU64(), 1u);
    // The big sweep is still going: the interactive run overtook it.
    EXPECT_GE(service_->activeRequests(), 1u);

    // Drain the sweep so teardown is orderly.
    for (;;) {
        ASSERT_TRUE(sweeper.readLine(&line));
        Json parsed;
        std::string error;
        ASSERT_TRUE(Json::parse(line, &parsed, &error)) << error;
        if (parsed.getBool("done", false))
            break;
    }
}

TEST_F(ServiceFixture, StatusOpReportsLifecycle)
{
    LineChannel channel = connect();
    Json status = Json::object();
    status.set("op", "status");
    const Json idle = roundTrip(channel, status);
    EXPECT_TRUE(idle.getBool("ok"));
    EXPECT_EQ(idle.get("queueDepth").asU64(), 0u);
    EXPECT_EQ(idle.get("activeRequests").asU64(), 0u);
    EXPECT_EQ(idle.get("connections").asArray().size(), 0u);
    const Json &counters = idle.get("counters");
    EXPECT_EQ(counters.get("cancelledBatches").asU64(), 0u);
    EXPECT_EQ(counters.get("reapedBatches").asU64(), 0u);

    // With a batch in flight the connection shows up, id and all.
    const auto specs = distinctSpecs(60, 9000);
    LineChannel runner = connect();
    ASSERT_TRUE(runner.writeLine(runRequest(21, specs, true).dump()));
    std::string line;
    ASSERT_TRUE(runner.readLine(&line));
    const Json busy = roundTrip(channel, status);
    ASSERT_EQ(busy.get("connections").asArray().size(), 1u);
    const Json &conn = busy.get("connections").asArray()[0];
    EXPECT_EQ(conn.get("inflight").asU64(), 1u);
    EXPECT_EQ(conn.get("requests").asArray()[0].asU64(), 21u);

    // Drain so teardown is orderly.
    for (;;) {
        ASSERT_TRUE(runner.readLine(&line));
        Json parsed;
        std::string error;
        ASSERT_TRUE(Json::parse(line, &parsed, &error)) << error;
        if (parsed.getBool("done", false))
            break;
    }
}

TEST_F(ServiceFixture, StatusOpReportsPerLaneDepths)
{
    LineChannel channel = connect();
    Json status = Json::object();
    status.set("op", "status");
    const Json s = roundTrip(channel, status);
    ASSERT_EQ(s.get("lanes").type(), Json::Type::Array);
    // The engine's default lane plus this connection's own lane.
    ASSERT_GE(s.get("lanes").asArray().size(), 2u);
    for (const Json &lane : s.get("lanes").asArray()) {
        EXPECT_TRUE(lane.has("lane"));
        EXPECT_EQ(lane.get("depth").asU64(), 0u);  // idle daemon
    }
}

TEST_F(ServiceFixture, MetricsOpReportsRegistryAndProm)
{
    // Move the registry: stream one small batch to completion.
    const auto specs = distinctSpecs(3, 12000);
    LineChannel runner = connect();
    ASSERT_TRUE(runner.writeLine(runRequest(31, specs, true).dump()));
    std::string line;
    for (;;) {
        ASSERT_TRUE(runner.readLine(&line));
        Json parsed;
        std::string error;
        ASSERT_TRUE(Json::parse(line, &parsed, &error)) << error;
        if (parsed.getBool("done", false))
            break;
    }

    LineChannel channel = connect();
    Json request = Json::object();
    request.set("op", "metrics");
    request.set("prom", true);
    const Json response = roundTrip(channel, request);
    EXPECT_TRUE(response.getBool("ok"));

    // The registry is process-wide, so earlier tests in this binary
    // contribute too — assert lower bounds, not exact values.
    const Json &metrics = response.get("metrics");
    ASSERT_EQ(metrics.type(), Json::Type::Object);
    EXPECT_GE(metrics.get("counters")
                  .get("engine_points_completed_total")
                  .asU64(),
              3u);
    EXPECT_GE(metrics.get("counters")
                  .get("service_connections_total")
                  .asU64(),
              2u);
    const Json &firstPoint = metrics.get("histograms")
                                 .get("service_first_point_us{op=\"run\"}");
    ASSERT_EQ(firstPoint.type(), Json::Type::Object);
    EXPECT_GE(firstPoint.get("count").asU64(), 1u);
    EXPECT_TRUE(firstPoint.has("p50"));
    EXPECT_TRUE(firstPoint.has("p99"));
    const Json &done = metrics.get("histograms")
                           .get("service_done_us{op=\"run\"}");
    ASSERT_EQ(done.type(), Json::Type::Object);
    EXPECT_GE(done.get("count").asU64(), 1u);

    const std::string prom = response.getString("prom");
    EXPECT_NE(
        prom.find("# TYPE engine_points_completed_total counter"),
        std::string::npos);
    EXPECT_NE(prom.find("service_first_point_us_bucket"),
              std::string::npos);
    EXPECT_NE(prom.find("le=\"+Inf\""), std::string::npos);
}

TEST(ServiceStore, StatusReportsPerShardStoreCounters)
{
    namespace fs = std::filesystem;
    const std::string tag =
        "mtv_test_service_store_" + std::to_string(::getpid());
    const fs::path dir = fs::temp_directory_path() / tag;
    fs::remove_all(dir);
    const std::string sock =
        (fs::temp_directory_path() / (tag + ".sock")).string();

    ServiceOptions options;
    options.socketPath = sock;
    options.storeDir = dir.string();
    options.storeShards = 4;
    options.workers = 2;
    MtvService service(options);
    std::thread serveThread([&service] { service.serve(); });

    {
        std::string error;
        const int fd = connectToDaemon(sock, &error);
        ASSERT_GE(fd, 0) << error;
        LineChannel channel(fd);
        const auto specs = distinctSpecs(6, 20000);
        ASSERT_TRUE(
            channel.writeLine(runRequest(41, specs, true).dump()));
        std::string line;
        for (;;) {
            ASSERT_TRUE(channel.readLine(&line));
            Json parsed;
            ASSERT_TRUE(Json::parse(line, &parsed, &error)) << error;
            if (parsed.getBool("done", false))
                break;
        }

        Json status = Json::object();
        status.set("op", "status");
        ASSERT_TRUE(channel.writeLine(status.dump()));
        ASSERT_TRUE(channel.readLine(&line));
        Json s;
        ASSERT_TRUE(Json::parse(line, &s, &error)) << error;
        ASSERT_EQ(s.get("shards").type(), Json::Type::Array);
        ASSERT_EQ(s.get("shards").asArray().size(), 4u);
        uint64_t appends = 0, records = 0;
        for (const Json &shard : s.get("shards").asArray()) {
            EXPECT_TRUE(shard.has("shard"));
            EXPECT_TRUE(shard.has("hits"));
            EXPECT_TRUE(shard.has("misses"));
            EXPECT_EQ(shard.get("recovered").asU64(), 0u);  // fresh
            EXPECT_EQ(shard.get("dropped").asU64(), 0u);
            appends += shard.get("appends").asU64();
            records += shard.get("records").asU64();
        }
        // All six distinct points simulated fresh and written through.
        EXPECT_EQ(appends, 6u);
        EXPECT_EQ(records, 6u);
    }

    service.stop();
    serveThread.join();
    fs::remove_all(dir);
}

// ---------------------------------------------------------------------
// Protocol v6: binary result frames
// ---------------------------------------------------------------------

namespace
{

/** Little-endian field reads for picking a wire frame apart. */
uint32_t
wireU32(const std::string &bytes, size_t at)
{
    uint32_t v = 0;
    for (size_t i = 0; i < 4; ++i)
        v |= static_cast<uint32_t>(
                 static_cast<uint8_t>(bytes[at + i]))
             << (8 * i);
    return v;
}

uint64_t
wireU64(const std::string &bytes, size_t at)
{
    uint64_t v = 0;
    for (size_t i = 0; i < 8; ++i)
        v |= static_cast<uint64_t>(
                 static_cast<uint8_t>(bytes[at + i]))
             << (8 * i);
    return v;
}

/** A representative frame: group extras, flags set, and a blob with
 *  bytes a naive framing would trip on (the marker, newlines, NULs). */
ResultFrame
sampleFrame()
{
    ResultFrame frame;
    frame.id = 7;
    frame.seq = 3;
    frame.cached = true;
    frame.fromStore = true;
    frame.hasGroupExtras = true;
    frame.spec = "mode=group;scale=2e-05;programs=trfd,swm256";
    frame.speedup = 1.75;
    frame.mthOccupation = 0.5;
    frame.refOccupation = -0.25;
    frame.mthVopc = 2.5;
    frame.refVopc = 1e300;
    frame.hasBlob = true;
    frame.blob = std::string("\xbf\n\x00{\"x\"}\x00\xff", 11);
    return frame;
}

/** The payload slice of a full wire encoding (marker, length and
 *  trailer stripped), layout-checked along the way. */
std::string
framePayload(const ResultFrame &frame)
{
    const std::string wire = encodeResultFrame(frame);
    EXPECT_GE(wire.size(), 13u);
    EXPECT_EQ(static_cast<uint8_t>(wire[0]), resultFrameMarker);
    const uint32_t payloadLen = wireU32(wire, 1);
    EXPECT_EQ(wire.size(), 5u + payloadLen + 8u);
    const std::string payload = wire.substr(5, payloadLen);
    EXPECT_EQ(wireU64(wire, 5 + payloadLen),
              frameChecksum(payload.data(), payload.size()));
    return payload;
}

} // namespace

TEST(Protocol, FrameCodecRoundTripAllShapes)
{
    const auto roundTrips = [](const ResultFrame &frame) {
        ResultFrame back;
        std::string error;
        ASSERT_TRUE(decodeResultFrame(framePayload(frame), &back,
                                      &error))
            << error;
        EXPECT_EQ(back.id, frame.id);
        EXPECT_EQ(back.seq, frame.seq);
        EXPECT_EQ(back.cached, frame.cached);
        EXPECT_EQ(back.fromStore, frame.fromStore);
        EXPECT_EQ(back.hasGroupExtras, frame.hasGroupExtras);
        EXPECT_EQ(back.hasBlob, frame.hasBlob);
        EXPECT_EQ(back.spec, frame.spec);
        EXPECT_EQ(back.blob, frame.blob);
        if (frame.hasGroupExtras) {
            EXPECT_DOUBLE_EQ(back.speedup, frame.speedup);
            EXPECT_DOUBLE_EQ(back.mthOccupation,
                             frame.mthOccupation);
            EXPECT_DOUBLE_EQ(back.refOccupation,
                             frame.refOccupation);
            EXPECT_DOUBLE_EQ(back.mthVopc, frame.mthVopc);
            EXPECT_DOUBLE_EQ(back.refVopc, frame.refVopc);
        }
    };

    // Group extras + binary-hostile blob bytes.
    roundTrips(sampleFrame());

    // A plain single-spec point: no extras, no flags.
    ResultFrame single;
    single.id = 0;
    single.seq = 0;
    single.spec = "mode=single;scale=2e-05;programs=trfd";
    single.hasBlob = true;
    single.blob = "canonical bytes";
    roundTrips(single);

    // Quiet stream: blobLen=0 frames, empty spec allowed too.
    ResultFrame quiet;
    quiet.id = 12;
    quiet.seq = 999;
    quiet.spec = "";
    roundTrips(quiet);
}

TEST(Protocol, AppendResultFrameMatchesTwoStepEncoder)
{
    ExperimentEngine engine;
    RunResult group = engine.run(RunSpec::group(
        {"trfd", "swm256"}, MachineParams::multithreaded(2),
        testScale));
    const RunResult single = engine.run(RunSpec::single(
        "dyfesm", MachineParams::reference(), testScale));
    const std::string groupBlob = serializeSimStats(group.stats);
    const std::string singleBlob = serializeSimStats(single.stats);

    // The one-pass encoder must be byte-identical to the two-step
    // form, appended onto a buffer that already holds other frames.
    const auto matches = [](const RunResult &result, uint64_t id,
                            uint64_t seq, const std::string *blob) {
        std::string streamed = "already-buffered-bytes";
        appendResultFrame(&streamed, result, id, seq, blob);
        const std::string wire =
            encodeResultFrame(resultToFrame(result, id, seq, blob));
        EXPECT_EQ(streamed, "already-buffered-bytes" + wire);
    };
    matches(group, 3, 0, &groupBlob);       // group extras ride along
    matches(single, 3, 1, &singleBlob);     // no extras
    matches(single, 3, 2, nullptr);         // quiet: blobLen=0 frame

    // A carried specCanonical (the wire decoders and the submit fast
    // path set it) must not change a single encoded byte.
    group.specCanonical = group.spec.canonical();
    matches(group, 4, 0, &groupBlob);
}

TEST(Protocol, DecodeResultFrameRejectsMalformedPayloads)
{
    const std::string payload = framePayload(sampleFrame());
    ResultFrame out;
    std::string error;

    // Every proper prefix is a truncation, never a crash.
    for (size_t cut = 0; cut < payload.size(); ++cut) {
        error.clear();
        EXPECT_FALSE(decodeResultFrame(payload.substr(0, cut), &out,
                                       &error))
            << "cut at " << cut;
        EXPECT_FALSE(error.empty()) << "cut at " << cut;
    }

    // Trailing garbage after a complete payload.
    EXPECT_FALSE(decodeResultFrame(payload + 'x', &out, &error));
    EXPECT_NE(error.find("trailing"), std::string::npos);

    // hasBlob flag contradicting the blob it frames (flags byte sits
    // at payload offset 16, hasBlob is bit 3), both directions.
    std::string lying = payload;
    lying[16] = static_cast<char>(
        static_cast<uint8_t>(lying[16]) & ~uint8_t{0x08});
    EXPECT_FALSE(decodeResultFrame(lying, &out, &error));
    EXPECT_NE(error.find("hasBlob"), std::string::npos);

    ResultFrame quiet;
    quiet.id = 1;
    quiet.spec = "mode=single;scale=1;programs=trfd";
    std::string quietLying = framePayload(quiet);
    quietLying[16] = static_cast<char>(
        static_cast<uint8_t>(quietLying[16]) | uint8_t{0x08});
    EXPECT_FALSE(decodeResultFrame(quietLying, &out, &error));
    EXPECT_NE(error.find("hasBlob"), std::string::npos);
}

TEST(Protocol, ChannelDemuxesFramesAndRejectsCorruption)
{
    const std::string wire = encodeResultFrame(sampleFrame());
    const std::string payload = framePayload(sampleFrame());

    // Write @p bytes into a fresh socketpair, close the writer, and
    // report the first message kind the reading channel sees.
    const auto firstKind = [](const std::string &bytes,
                              std::string *out) {
        int fds[2];
        EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
        size_t sent = 0;
        while (sent < bytes.size()) {
            const ssize_t n = ::write(fds[1], bytes.data() + sent,
                                      bytes.size() - sent);
            EXPECT_GT(n, 0);
            sent += static_cast<size_t>(n);
        }
        ::close(fds[1]);
        LineChannel reader(fds[0]);
        return reader.readMessage(out);
    };

    // Frames and JSON control lines interleave on one stream; the
    // first byte demultiplexes them.
    {
        int fds[2];
        ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
        const std::string stream =
            wire + "{\"done\":true}\n" + wire;
        ASSERT_EQ(::write(fds[1], stream.data(), stream.size()),
                  static_cast<ssize_t>(stream.size()));
        ::close(fds[1]);
        LineChannel reader(fds[0]);
        std::string message;
        ASSERT_EQ(reader.readMessage(&message),
                  LineChannel::MessageKind::Frame);
        EXPECT_EQ(message, payload);
        ASSERT_EQ(reader.readMessage(&message),
                  LineChannel::MessageKind::Line);
        EXPECT_EQ(message, "{\"done\":true}");
        ASSERT_EQ(reader.readMessage(&message),
                  LineChannel::MessageKind::Frame);
        EXPECT_EQ(message, payload);
        EXPECT_EQ(reader.readMessage(&message),
                  LineChannel::MessageKind::Eof);
    }

    // Any corrupted byte past the marker is caught: either the
    // length claim goes absurd or the trailer checksum disagrees.
    // (Index 0 would flip the marker and reroute to readLine.)
    std::string message;
    for (const size_t at :
         {size_t{1}, size_t{4}, size_t{5}, size_t{16},
          size_t{25}, wire.size() - 9, wire.size() - 8,
          wire.size() - 1}) {
        std::string corrupt = wire;
        corrupt[at] = static_cast<char>(
            static_cast<uint8_t>(corrupt[at]) ^ 0x5a);
        EXPECT_EQ(firstKind(corrupt, &message),
                  LineChannel::MessageKind::BadFrame)
            << "corrupt byte " << at;
    }

    // EOF mid-frame is a short read, not a clean close.
    EXPECT_EQ(firstKind(wire.substr(0, wire.size() - 3), &message),
              LineChannel::MessageKind::BadFrame);
    EXPECT_EQ(firstKind(wire.substr(0, 3), &message),
              LineChannel::MessageKind::BadFrame);

    // A length claim beyond the message cap is framing lost, without
    // waiting for the bytes.
    std::string huge;
    huge.push_back(static_cast<char>(resultFrameMarker));
    huge.append("\xff\xff\xff\xff", 4);
    EXPECT_EQ(firstKind(huge, &message),
              LineChannel::MessageKind::BadFrame);
}

TEST(Protocol, SubmitFastPathCarriesCanonicalBlobZeroCopy)
{
    // The store->wire zero-copy contract: with a canonical
    // serializer installed, a warm memo hit hands out the memoized
    // canonical bytes and the cache key it already computed, so the
    // daemon streams frames without re-encoding or recanonicalizing.
    EngineOptions options;
    options.canonicalSerializer = [](const SimStats &stats) {
        return serializeSimStats(stats);
    };
    ExperimentEngine engine(options);
    const RunSpec spec = RunSpec::single(
        "swm256", MachineParams::reference(), testScale);

    const RunResult cold = engine.submit(spec).get();
    EXPECT_FALSE(cold.cached);

    const RunResult warm = engine.submit(spec).get();
    EXPECT_TRUE(warm.cached);
    ASSERT_TRUE(warm.blob);
    EXPECT_EQ(*warm.blob, serializeSimStats(warm.stats));
    EXPECT_EQ(warm.specCanonical, spec.canonical());

    // Later hits share the same memoized allocation.
    const RunResult again = engine.submit(spec).get();
    ASSERT_TRUE(again.blob);
    EXPECT_EQ(again.blob.get(), warm.blob.get());

    // A store hit streams its stored bytes the same way.
    const auto dir = std::filesystem::temp_directory_path() /
                     ("mtv_test_zerocopy_" +
                      std::to_string(::getpid()));
    std::filesystem::remove_all(dir);
    {
        EngineOptions writer;
        writer.backend =
            std::make_shared<ResultStore>(dir.string());
        ExperimentEngine persist(writer);
        persist.run(spec);
    }
    EngineOptions reader;
    reader.backend = std::make_shared<ResultStore>(dir.string());
    ExperimentEngine reload(reader);
    const RunResult fromStore = reload.submit(spec).get();
    EXPECT_TRUE(fromStore.fromStore);
    ASSERT_TRUE(fromStore.blob);
    EXPECT_EQ(*fromStore.blob,
              serializeSimStats(fromStore.stats));
    std::filesystem::remove_all(dir);
}

TEST_F(ServiceFixture, HelloNegotiatesWireFormat)
{
    LineChannel channel = connect();
    Json hello = Json::object();
    hello.set("op", "hello");
    hello.set("wire", std::string("binary"));
    const Json confirm = roundTrip(channel, hello);
    EXPECT_TRUE(confirm.getBool("ok"));
    EXPECT_TRUE(confirm.getBool("hello"));
    EXPECT_EQ(confirm.getString("wire"), "binary");
    EXPECT_EQ(confirm.get("protocol").asU64(),
              static_cast<uint64_t>(serviceProtocolVersion));

    // An unknown wire value is an error and the connection stays on
    // JSON — control ops keep answering lines.
    LineChannel other = connect();
    Json bad = Json::object();
    bad.set("op", "hello");
    bad.set("wire", std::string("carrier-pigeon"));
    EXPECT_TRUE(roundTrip(other, bad).has("error"));
    Json ping = Json::object();
    ping.set("op", "ping");
    EXPECT_TRUE(roundTrip(other, ping).getBool("pong"));
}

TEST_F(ServiceFixture, BinarySweepStreamsBitIdenticalFrames)
{
    SweepRequest request;
    request.family = "groupings";
    request.program = "trfd";
    request.contexts = 2;
    request.scale = testScale;
    ExperimentEngine localEngine;
    const auto expected =
        localEngine.runAll(expandSweep(request).specs());

    // The v5-style JSON stream of the same sweep, for comparison.
    LineChannel jsonChannel = connect();
    sendSweep(jsonChannel, 1, request);
    std::unordered_map<uint64_t, StreamTally> tallies;
    tallies[1] = StreamTally();
    demux(jsonChannel, tallies);
    const StreamTally &jsonTally = tallies[1];
    ASSERT_EQ(jsonTally.blobs.size(), expected.size());

    // Binary side: negotiate, then the points arrive as frames while
    // the ack and done lines stay JSON.
    LineChannel channel = connect();
    Json hello = Json::object();
    hello.set("op", "hello");
    hello.set("wire", std::string("binary"));
    ASSERT_TRUE(roundTrip(channel, hello).getBool("ok"));
    sendSweep(channel, 2, request);

    uint64_t seq = 0;
    uint64_t clientDigest = 0xcbf29ce484222325ull;
    std::vector<std::string> blobs;
    std::string serverDigest;
    bool sawAck = false;
    bool done = false;
    while (!done) {
        std::string message;
        const auto kind = channel.readMessage(&message);
        if (kind == LineChannel::MessageKind::Line) {
            Json line;
            std::string error;
            ASSERT_TRUE(Json::parse(message, &line, &error))
                << error;
            ASSERT_FALSE(line.has("error"))
                << line.getString("error");
            if (line.getBool("ack", false)) {
                EXPECT_EQ(line.get("count").asU64(),
                          expected.size());
                sawAck = true;
                continue;
            }
            ASSERT_TRUE(line.getBool("done", false)) << message;
            serverDigest = line.getString("digest");
            done = true;
            continue;
        }
        ASSERT_EQ(kind, LineChannel::MessageKind::Frame);
        ResultFrame frame;
        std::string error;
        ASSERT_TRUE(decodeResultFrame(message, &frame, &error))
            << error;
        ASSERT_LT(seq, expected.size());
        EXPECT_EQ(frame.id, 2u);
        EXPECT_EQ(frame.seq, seq);
        ASSERT_TRUE(frame.hasBlob);
        EXPECT_EQ(frame.spec, expected[seq].spec.canonical());
        EXPECT_EQ(frame.hasGroupExtras,
                  expected[seq].spec.mode == SpecMode::Group);
        if (frame.hasGroupExtras) {
            EXPECT_DOUBLE_EQ(frame.speedup, expected[seq].speedup);
        }
        clientDigest = fnv1a64(frame.blob.data(),
                               frame.blob.size(), clientDigest);
        blobs.push_back(frame.blob);
        ++seq;
    }

    EXPECT_TRUE(sawAck);
    ASSERT_EQ(blobs.size(), expected.size());
    // Frame blobs byte-identical to the JSON stream's hex blobs and
    // to the in-process run; both wires fold to one digest.
    for (size_t i = 0; i < blobs.size(); ++i) {
        EXPECT_EQ(blobs[i], jsonTally.blobs[i]) << "point " << i;
        EXPECT_EQ(blobs[i], serializeSimStats(expected[i].stats))
            << "point " << i;
    }
    EXPECT_EQ(serverDigest, digestHex(clientDigest));
    EXPECT_EQ(serverDigest, jsonTally.serverDigest);
}

TEST_F(ServiceFixture, FrameOnRequestChannelAnswersBadFrame)
{
    // Clients never send frames; a frame marker on the request
    // channel means framing is lost. The daemon answers a structured
    // badFrame error, closes the connection, and keeps serving
    // everyone else.
    LineChannel channel = connect();
    std::string garbage;
    garbage.push_back(static_cast<char>(resultFrameMarker));
    garbage.append("\x03\x00\x00\x00", 4);
    garbage.append("abc");
    const uint64_t checksum = frameChecksum("abc", 3);
    for (size_t i = 0; i < 8; ++i)
        garbage.push_back(
            static_cast<char>((checksum >> (8 * i)) & 0xff));
    ASSERT_TRUE(channel.writeBytes(garbage));

    std::string line;
    ASSERT_TRUE(channel.readLine(&line));
    Json response;
    std::string error;
    ASSERT_TRUE(Json::parse(line, &response, &error)) << error;
    EXPECT_TRUE(response.has("error"));
    EXPECT_TRUE(response.getBool("badFrame", false));
    EXPECT_FALSE(channel.readLine(&line));  // connection closed

    // The daemon survived.
    LineChannel fresh = connect();
    Json ping = Json::object();
    ping.set("op", "ping");
    EXPECT_TRUE(roundTrip(fresh, ping).getBool("pong"));
}

TEST_F(ServiceFixture, ShutdownOpStopsServe)
{
    LineChannel channel = connect();
    Json request = Json::object();
    request.set("op", "shutdown");
    const Json response = roundTrip(channel, request);
    EXPECT_TRUE(response.getBool("stopping"));
    serveThread_.join();       // serve() returns on its own
    serveThread_ = std::thread([] {});  // keep TearDown joinable
}

} // namespace
} // namespace mtv
