/**
 * @file
 * Tests for src/service: the JSON codec, the protocol encoding, the
 * ScopedFatalAsException guard, and a live in-process mtvd loopback —
 * daemon results must be bit-identical to in-process runs, malformed
 * client input must be answered (not crash the daemon), and request
 * batches must stream back in submission order.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <thread>

#include <unistd.h>

#include "src/api/engine.hh"
#include "src/common/logging.hh"
#include "src/service/json.hh"
#include "src/service/server.hh"
#include "src/store/stats_codec.hh"
#include "src/workload/suite.hh"

namespace mtv
{
namespace
{

constexpr double testScale = 2e-5;

// ---------------------------------------------------------------------
// Json
// ---------------------------------------------------------------------

TEST(Json, DumpParseRoundTrip)
{
    Json obj = Json::object();
    obj.set("op", "run");
    obj.set("quiet", true);
    obj.set("n", 42);
    obj.set("x", 1.5);
    obj.set("nothing", Json());
    Json arr = Json::array();
    arr.push("a").push(Json(7)).push(false);
    obj.set("list", std::move(arr));

    Json back;
    std::string error;
    ASSERT_TRUE(Json::parse(obj.dump(), &back, &error)) << error;
    EXPECT_EQ(back.getString("op"), "run");
    EXPECT_TRUE(back.getBool("quiet"));
    EXPECT_EQ(back.get("n").asU64(), 42u);
    EXPECT_DOUBLE_EQ(back.get("x").asNumber(), 1.5);
    EXPECT_TRUE(back.get("nothing").isNull());
    ASSERT_EQ(back.get("list").asArray().size(), 3u);
    EXPECT_EQ(back.get("list").asArray()[0].asString(), "a");
    EXPECT_FALSE(back.get("list").asArray()[2].asBool());
    // Canonical re-dump.
    EXPECT_EQ(back.dump(), obj.dump());
}

TEST(Json, StringEscapes)
{
    Json s(std::string("line\n\"quoted\"\ttab\\slash"));
    const std::string dumped = s.dump();
    EXPECT_EQ(dumped.find('\n'), std::string::npos);
    Json back;
    std::string error;
    ASSERT_TRUE(Json::parse(dumped, &back, &error)) << error;
    EXPECT_EQ(back.asString(), s.asString());
}

TEST(Json, ParseRejectsMalformedInput)
{
    Json out;
    std::string error;
    EXPECT_FALSE(Json::parse("{\"a\":", &out, &error));
    EXPECT_FALSE(Json::parse("[1,2,]", &out, &error));
    EXPECT_FALSE(Json::parse("{\"a\":1} trailing", &out, &error));
    EXPECT_FALSE(Json::parse("nope", &out, &error));
    EXPECT_FALSE(Json::parse("", &out, &error));
    EXPECT_NE(error.find("JSON parse error"), std::string::npos);
}

TEST(Json, ParsesNestedStructures)
{
    Json out;
    std::string error;
    ASSERT_TRUE(Json::parse(
        "  {\"a\": [1, {\"b\": \"\\u0041x\"}], \"c\": -2.5e3} ", &out,
        &error))
        << error;
    EXPECT_EQ(out.get("a").asArray()[1].getString("b"), "Ax");
    EXPECT_DOUBLE_EQ(out.getNumber("c"), -2500.0);
}

// ---------------------------------------------------------------------
// ScopedFatalAsException
// ---------------------------------------------------------------------

TEST(FatalScope, FatalThrowsInsideScope)
{
    ScopedFatalAsException scope;
    EXPECT_THROW(fatal("boom %d", 7), FatalError);
    try {
        fatal("boom %d", 7);
    } catch (const FatalError &e) {
        EXPECT_STREQ(e.what(), "boom 7");
    }
}

TEST(FatalScopeDeath, FatalStillExitsOutsideScope)
{
    EXPECT_EXIT(fatal("bye"), testing::ExitedWithCode(1), "bye");
}

// ---------------------------------------------------------------------
// Protocol encoding
// ---------------------------------------------------------------------

TEST(Protocol, ResultLineCarriesLosslessBlob)
{
    ExperimentEngine engine;
    const RunSpec spec = RunSpec::single(
        "trfd", MachineParams::reference(), testScale);
    const RunResult result = engine.run(spec);
    const Json line = resultToJson(result, 3, /*includeBlob=*/true);
    EXPECT_EQ(line.get("seq").asU64(), 3u);
    EXPECT_EQ(line.getString("spec"), spec.canonical());
    const SimStats decoded =
        deserializeSimStats(hexDecode(line.getString("blob")));
    EXPECT_EQ(serializeSimStats(decoded),
              serializeSimStats(result.stats));

    const Json quiet = resultToJson(result, 0, /*includeBlob=*/false);
    EXPECT_FALSE(quiet.has("blob"));
}

// ---------------------------------------------------------------------
// Live daemon loopback
// ---------------------------------------------------------------------

/** An MtvService on a temp socket, served from a background thread. */
class ServiceFixture : public testing::Test
{
  protected:
    void
    SetUp() override
    {
        socketPath_ =
            (std::filesystem::temp_directory_path() /
             ("mtv_test_service_" + std::to_string(::getpid()) +
              ".sock"))
                .string();
        ServiceOptions options;
        options.socketPath = socketPath_;
        options.workers = 2;
        service_ = std::make_unique<MtvService>(options);
        serveThread_ =
            std::thread([this] { service_->serve(); });
    }

    void
    TearDown() override
    {
        service_->stop();
        serveThread_.join();
        service_.reset();
    }

    LineChannel
    connect()
    {
        std::string error;
        const int fd = connectToDaemon(socketPath_, &error);
        EXPECT_GE(fd, 0) << error;
        return LineChannel(fd);
    }

    Json
    roundTrip(LineChannel &channel, const Json &request)
    {
        EXPECT_TRUE(channel.writeLine(request.dump()));
        std::string line;
        EXPECT_TRUE(channel.readLine(&line));
        Json response;
        std::string error;
        EXPECT_TRUE(Json::parse(line, &response, &error)) << error;
        return response;
    }

    std::string socketPath_;
    std::unique_ptr<MtvService> service_;
    std::thread serveThread_;
};

TEST_F(ServiceFixture, PingPongs)
{
    LineChannel channel = connect();
    Json ping = Json::object();
    ping.set("op", "ping");
    const Json response = roundTrip(channel, ping);
    EXPECT_TRUE(response.getBool("ok"));
    EXPECT_TRUE(response.getBool("pong"));
    EXPECT_EQ(response.get("protocol").asU64(),
              static_cast<uint64_t>(serviceProtocolVersion));
}

TEST_F(ServiceFixture, RunBatchStreamsInOrderAndBitIdentical)
{
    // The daemon's answers must match a plain in-process engine.
    std::vector<RunSpec> specs;
    specs.push_back(RunSpec::group({"trfd", "swm256"},
                                   MachineParams::multithreaded(2),
                                   testScale));
    specs.push_back(RunSpec::single(
        "dyfesm", MachineParams::reference(), testScale));
    specs.push_back(specs[1]);  // duplicate: served by the cache
    ExperimentEngine local;
    const auto expected = local.runAll(specs);

    LineChannel channel = connect();
    Json request = Json::object();
    request.set("op", "run");
    Json specArray = Json::array();
    for (const RunSpec &spec : specs)
        specArray.push(spec.canonical());
    request.set("specs", std::move(specArray));
    ASSERT_TRUE(channel.writeLine(request.dump()));

    for (size_t i = 0; i < specs.size(); ++i) {
        std::string line;
        ASSERT_TRUE(channel.readLine(&line));
        Json result;
        std::string error;
        ASSERT_TRUE(Json::parse(line, &result, &error)) << error;
        ASSERT_FALSE(result.has("error"))
            << result.getString("error");
        EXPECT_EQ(result.get("seq").asU64(), i);
        EXPECT_EQ(result.getString("spec"), specs[i].canonical());
        const SimStats stats =
            deserializeSimStats(hexDecode(result.getString("blob")));
        EXPECT_EQ(serializeSimStats(stats),
                  serializeSimStats(expected[i].stats));
        if (specs[i].mode == SpecMode::Group) {
            EXPECT_DOUBLE_EQ(result.getNumber("speedup"),
                             expected[i].speedup);
        }
    }
    std::string line;
    ASSERT_TRUE(channel.readLine(&line));
    Json done;
    std::string error;
    ASSERT_TRUE(Json::parse(line, &done, &error)) << error;
    EXPECT_TRUE(done.getBool("done"));
    EXPECT_EQ(done.get("count").asU64(), specs.size());
    // The duplicate third spec was coalesced/served by the cache.
    EXPECT_GE(done.get("cacheServed").asU64(), 1u);
}

TEST_F(ServiceFixture, MalformedInputAnswersWithoutDying)
{
    LineChannel channel = connect();

    // Broken JSON.
    ASSERT_TRUE(channel.writeLine("{not json"));
    std::string line;
    ASSERT_TRUE(channel.readLine(&line));
    EXPECT_NE(line.find("error"), std::string::npos);

    // Valid JSON, unknown op.
    Json bad = Json::object();
    bad.set("op", "explode");
    Json response = roundTrip(channel, bad);
    EXPECT_TRUE(response.has("error"));

    // Valid op, malformed spec (unknown program) — validation runs
    // through fatal() and must come back as an error line.
    Json run = Json::object();
    run.set("op", "run");
    Json specArray = Json::array();
    specArray.push("mode=single;scale=0.001;max=0;"
                   "programs=doesnotexist;machine=contexts=1");
    run.set("specs", std::move(specArray));
    response = roundTrip(channel, run);
    EXPECT_TRUE(response.has("error"));

    // The daemon survived all of it.
    Json ping = Json::object();
    ping.set("op", "ping");
    EXPECT_TRUE(roundTrip(channel, ping).getBool("pong"));
}

TEST_F(ServiceFixture, StatsAndClear)
{
    LineChannel channel = connect();
    Json run = Json::object();
    run.set("op", "run");
    Json specArray = Json::array();
    specArray.push(RunSpec::single("trfd", MachineParams::reference(),
                                   testScale)
                       .canonical());
    run.set("specs", std::move(specArray));
    run.set("quiet", true);
    ASSERT_TRUE(channel.writeLine(run.dump()));
    std::string line;
    ASSERT_TRUE(channel.readLine(&line));  // the result line
    ASSERT_TRUE(channel.readLine(&line));  // the done line

    Json statsRequest = Json::object();
    statsRequest.set("op", "stats");
    Json stats = roundTrip(channel, statsRequest);
    EXPECT_TRUE(stats.getBool("ok"));
    EXPECT_EQ(stats.get("cache").get("size").asU64(), 1u);
    EXPECT_TRUE(stats.get("store").isNull());  // no --store configured

    Json clearRequest = Json::object();
    clearRequest.set("op", "clear");
    EXPECT_TRUE(roundTrip(channel, clearRequest).getBool("ok"));
    stats = roundTrip(channel, statsRequest);
    EXPECT_EQ(stats.get("cache").get("size").asU64(), 0u);
}

TEST_F(ServiceFixture, ConcurrentClientsShareOneEngine)
{
    const RunSpec spec = RunSpec::single(
        "swm256", MachineParams::reference(), testScale);
    auto clientRun = [this, &spec]() {
        LineChannel channel = connect();
        Json request = Json::object();
        request.set("op", "run");
        Json specArray = Json::array();
        specArray.push(spec.canonical());
        request.set("specs", std::move(specArray));
        ASSERT_TRUE(channel.writeLine(request.dump()));
        std::string line;
        ASSERT_TRUE(channel.readLine(&line));
        Json result;
        std::string error;
        ASSERT_TRUE(Json::parse(line, &result, &error)) << error;
        EXPECT_EQ(
            deserializeSimStats(hexDecode(result.getString("blob")))
                .cycles,
            ExperimentEngine().run(spec).stats.cycles);
    };
    std::thread a(clientRun), b(clientRun), c(clientRun);
    a.join();
    b.join();
    c.join();
    // Three identical requests; the engine simulated exactly once
    // (the rest were coalesced or cache-served).
    EXPECT_EQ(service_->engine().cacheMisses(), 1u);
    EXPECT_GE(service_->engine().cacheHits(), 2u);
}

TEST_F(ServiceFixture, ShutdownOpStopsServe)
{
    LineChannel channel = connect();
    Json request = Json::object();
    request.set("op", "shutdown");
    const Json response = roundTrip(channel, request);
    EXPECT_TRUE(response.getBool("stopping"));
    serveThread_.join();       // serve() returns on its own
    serveThread_ = std::thread([] {});  // keep TearDown joinable
}

} // namespace
} // namespace mtv
