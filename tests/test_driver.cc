/**
 * @file
 * Tests for src/driver: grouping enumeration, the speedup accounting,
 * reference-run memoization, the IDEAL bound, and per-program
 * averaging.
 */

#include <gtest/gtest.h>

#include "src/driver/experiments.hh"
#include "src/driver/runner.hh"

namespace mtv
{
namespace
{

constexpr double testScale = 2e-5;

TEST(Groupings, TwoThreadShape)
{
    const auto groups = groupingsFor("trfd", 2);
    ASSERT_EQ(groups.size(), 5u);
    for (const auto &g : groups) {
        ASSERT_EQ(g.size(), 2u);
        EXPECT_EQ(g[0], "trfd");
    }
}

TEST(Groupings, ThreeThreadShape)
{
    const auto groups = groupingsFor("tf", 3);  // abbrev canonicalizes
    ASSERT_EQ(groups.size(), 10u);
    for (const auto &g : groups) {
        ASSERT_EQ(g.size(), 3u);
        EXPECT_EQ(g[0], "flo52");
    }
}

TEST(Groupings, FourThreadShape)
{
    const auto groups = groupingsFor("swm256", 4);
    ASSERT_EQ(groups.size(), 10u);
    for (const auto &g : groups) {
        ASSERT_EQ(g.size(), 4u);
        EXPECT_EQ(g[0], "swm256");
        EXPECT_EQ(g[3], "nasa7");  // column 4 has one entry
    }
}

TEST(GroupingsDeath, InvalidContextCount)
{
    EXPECT_EXIT({ groupingsFor("swm256", 5); },
                testing::ExitedWithCode(1), "2..4");
}

TEST(Runner, ReferenceOfStripsMultithreading)
{
    MachineParams p = MachineParams::fujitsuDualScalar();
    p.memLatency = 70;
    p.readXbar = 3;
    const MachineParams ref = Runner::referenceOf(p);
    EXPECT_EQ(ref.contexts, 1);
    EXPECT_FALSE(ref.dualScalar);
    EXPECT_EQ(ref.decodeWidth, 1);
    EXPECT_EQ(ref.memLatency, 70);  // non-MT knobs preserved
    EXPECT_EQ(ref.readXbar, 3);
}

TEST(Runner, ReferenceRunIsMemoized)
{
    Runner runner(testScale);
    const MachineParams p = MachineParams::reference();
    const SimStats &a = runner.referenceRun("dyfesm", p);
    const SimStats &b = runner.referenceRun("dyfesm", p);
    EXPECT_EQ(&a, &b);  // same cached object
    EXPECT_GT(a.cycles, 0u);
}

TEST(Runner, ReferenceRunKeyedByParams)
{
    Runner runner(testScale);
    MachineParams p = MachineParams::reference();
    const SimStats &lat50 = runner.referenceRun("dyfesm", p);
    p.memLatency = 1;
    const SimStats &lat1 = runner.referenceRun("dyfesm", p);
    EXPECT_NE(&lat50, &lat1);
    EXPECT_LT(lat1.cycles, lat50.cycles);
}

TEST(Runner, TruncatedRunShorterThanFull)
{
    Runner runner(testScale);
    const MachineParams p = MachineParams::reference();
    const SimStats &full = runner.referenceRun("trfd", p);
    const SimStats half = runner.truncatedReferenceRun(
        "trfd", p, full.dispatches / 2);
    EXPECT_LT(half.cycles, full.cycles);
    EXPECT_EQ(half.dispatches, full.dispatches / 2);
    const SimStats zero = runner.truncatedReferenceRun("trfd", p, 0);
    EXPECT_EQ(zero.cycles, 0u);
}

TEST(Runner, GroupSpeedupIsPositiveAndSane)
{
    Runner runner(testScale);
    const GroupResult r = runner.runGroup(
        {"swm256", "hydro2d"}, MachineParams::multithreaded(2));
    EXPECT_GT(r.speedup, 0.9);
    EXPECT_LT(r.speedup, 2.0);  // 2 threads cannot exceed 2x
    EXPECT_GE(r.mthOccupation, r.refOccupation);
    EXPECT_GT(r.mthVopc, 0.0);
}

TEST(Runner, GroupAllowsDuplicatePrograms)
{
    // The paper groups HYDRO2D with itself; the runner must create
    // distinct instances.
    Runner runner(testScale);
    const GroupResult r = runner.runGroup(
        {"hydro2d", "hydro2d"}, MachineParams::multithreaded(2));
    EXPECT_GT(r.speedup, 0.9);
}

TEST(Runner, SpeedupAccountsFractionalRuns)
{
    // With a long thread-0 program and a short companion, the
    // companion restarts; the speedup must include those extra runs,
    // pushing it meaningfully above 1.
    Runner runner(testScale);
    const GroupResult r = runner.runGroup(
        {"trfd", "flo52"}, MachineParams::multithreaded(2));
    EXPECT_GT(r.mth.threads[1].runsCompleted +
                  (r.mth.threads[1].instructionsThisRun > 0 ? 1 : 0),
              0u);
    EXPECT_GT(r.speedup, 1.0);
}

TEST(Runner, JobQueueMatchesSuiteOrder)
{
    Runner runner(testScale);
    MachineParams p = MachineParams::multithreaded(2);
    const SimStats s =
        runner.runJobQueue({"flo52", "trfd", "dyfesm"}, p);
    ASSERT_EQ(s.jobs.size(), 3u);
    EXPECT_EQ(s.jobs[0].program, "flo52");
    EXPECT_EQ(s.jobs[1].program, "trfd");
    EXPECT_EQ(s.jobs[2].program, "dyfesm");
}

TEST(Runner, SequentialReferenceTimeIsSumOfRuns)
{
    Runner runner(testScale);
    const MachineParams p = MachineParams::reference();
    const uint64_t sum =
        runner.sequentialReferenceTime({"flo52", "trfd"}, p);
    EXPECT_EQ(sum, runner.referenceRun("flo52", p).cycles +
                       runner.referenceRun("trfd", p).cycles);
}

TEST(Runner, ProgramStatsMemoized)
{
    Runner runner(testScale);
    const TraceStats &a = runner.programStats("bdna");
    const TraceStats &b = runner.programStats("bdna");
    EXPECT_EQ(&a, &b);
    EXPECT_GT(a.vectorInstructions, 0u);
}

TEST(Runner, IdealBoundBelowAnyRealRun)
{
    Runner runner(testScale);
    const std::vector<std::string> jobs = {"flo52", "trfd", "dyfesm"};
    const IdealBound ideal = runner.idealTime(jobs);
    MachineParams p = MachineParams::multithreaded(4);
    const SimStats s = runner.runJobQueue(jobs, p);
    EXPECT_LE(ideal.bound, s.cycles);
    EXPECT_GT(ideal.bound, 0u);
}

TEST(Runner, IdealIsLatencyIndependent)
{
    Runner runner(testScale);
    const IdealBound b = runner.idealTime(jobQueueOrder());
    EXPECT_GT(b.addressBusCycles, 0u);
    // For this memory-bound suite the address bus binds.
    EXPECT_STREQ(b.binding(), "address-bus");
}

TEST(Experiments, AveragesForRunsAllGroupings)
{
    Runner runner(testScale);
    const ProgramAverages avg = averagesFor(
        runner, "dyfesm", 2, MachineParams::multithreaded(2));
    EXPECT_EQ(avg.runs, 5);
    EXPECT_EQ(avg.program, "dyfesm");
    EXPECT_GT(avg.speedup, 0.9);
    EXPECT_GT(avg.mthOccupation, 0.0);
    EXPECT_LE(avg.mthOccupation, 1.0);
}

TEST(Experiments, LatencyListsAreSorted)
{
    const auto &f4 = figure4Latencies();
    EXPECT_EQ(f4.size(), 4u);
    EXPECT_TRUE(std::is_sorted(f4.begin(), f4.end()));
    const auto &sweep = sweepLatencies();
    EXPECT_TRUE(std::is_sorted(sweep.begin(), sweep.end()));
    EXPECT_EQ(sweep.front(), 1);
    EXPECT_EQ(sweep.back(), 100);
}

} // namespace
} // namespace mtv
