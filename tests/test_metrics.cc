/**
 * @file
 * Unit tests for src/core metrics helpers and the resource
 * primitives in src/core/resources.hh.
 */

#include <gtest/gtest.h>

#include <set>

#include "src/core/metrics.hh"
#include "src/core/resources.hh"

namespace mtv
{
namespace
{

TEST(Metrics, FuStateNamesMatchPaperTuples)
{
    EXPECT_EQ(fuStateName(0), "<   ,   ,  >");
    EXPECT_EQ(fuStateName(1), "<   ,   ,LD>");
    EXPECT_EQ(fuStateName(2), "<   ,FU1,  >");
    EXPECT_EQ(fuStateName(4), "<FU2,   ,  >");
    EXPECT_EQ(fuStateName(7), "<FU2,FU1,LD>");
}

TEST(Metrics, BlockReasonNamesAreDistinct)
{
    std::set<std::string> names;
    for (int i = 0; i < static_cast<int>(BlockReason::NumReasons); ++i)
        names.insert(blockReasonName(static_cast<BlockReason>(i)));
    EXPECT_EQ(names.size(),
              static_cast<size_t>(BlockReason::NumReasons));
}

TEST(Metrics, OccupationAndVopc)
{
    SimStats s;
    s.cycles = 1000;
    s.memRequests = 800;
    s.vecOpsFu1 = 600;
    s.vecOpsFu2 = 400;
    EXPECT_DOUBLE_EQ(s.memPortOccupation(), 0.8);
    EXPECT_DOUBLE_EQ(s.vopc(), 1.0);
    s.memPorts = 2;
    EXPECT_DOUBLE_EQ(s.memPortOccupation(), 0.4);
}

TEST(Metrics, ZeroCycleStatsAreSafe)
{
    const SimStats s;
    EXPECT_EQ(s.memPortOccupation(), 0.0);
    EXPECT_EQ(s.vopc(), 0.0);
    EXPECT_EQ(s.memPortIdleFraction(), 0.0);
}

TEST(Metrics, IdleFractionCountsLdClearStates)
{
    SimStats s;
    s.cycles = 100;
    s.stateHist[0] = 30;   // all idle
    s.stateHist[2] = 20;   // FU1 only
    s.stateHist[1] = 25;   // LD only
    s.stateHist[7] = 25;   // all busy
    EXPECT_DOUBLE_EQ(s.memPortIdleFraction(), 0.5);
}

TEST(Resources, PipeUnitOccupancy)
{
    PipeUnit unit;
    EXPECT_TRUE(unit.freeAt(0));
    unit.occupy(5, 10);
    EXPECT_FALSE(unit.freeAt(9));
    EXPECT_TRUE(unit.freeAt(10));
    EXPECT_FALSE(unit.busyAt(4));
    EXPECT_TRUE(unit.busyAt(5));
    EXPECT_TRUE(unit.busyAt(9));
    EXPECT_FALSE(unit.busyAt(10));
    EXPECT_EQ(unit.busyCycles(), 5u);
    unit.occupy(20, 22);
    EXPECT_EQ(unit.busyCycles(), 7u);
    unit.clear();
    EXPECT_EQ(unit.busyCycles(), 0u);
    EXPECT_TRUE(unit.freeAt(0));
}

TEST(Resources, VRegTimingPredicates)
{
    VRegTiming reg;
    EXPECT_TRUE(reg.completeAt(0));
    EXPECT_TRUE(reg.idleAt(0));
    reg.writeDone = 100;
    reg.readBusy = 50;
    EXPECT_FALSE(reg.completeAt(99));
    EXPECT_TRUE(reg.completeAt(100));
    EXPECT_FALSE(reg.idleAt(99));
    EXPECT_TRUE(reg.idleAt(100));
    reg.readBusy = 120;
    EXPECT_FALSE(reg.idleAt(110));
    EXPECT_TRUE(reg.idleAt(120));
}

TEST(Resources, BankPortsTwoReadersOneWriter)
{
    BankPorts bank;
    EXPECT_EQ(bank.freeReadPorts(0), 2);
    bank.takeReadPort(0, 100);
    EXPECT_EQ(bank.freeReadPorts(0), 1);
    bank.takeReadPort(0, 50);
    EXPECT_EQ(bank.freeReadPorts(0), 0);
    EXPECT_EQ(bank.freeReadPorts(50), 1);
    EXPECT_EQ(bank.freeReadPorts(100), 2);
    EXPECT_TRUE(bank.writeFreeAt(0));
    bank.writeUntil = 40;
    EXPECT_FALSE(bank.writeFreeAt(39));
    EXPECT_TRUE(bank.writeFreeAt(40));
}

TEST(Resources, BankPortReusesFreedSlot)
{
    BankPorts bank;
    bank.takeReadPort(0, 10);
    bank.takeReadPort(0, 100);
    // At t=10 the first port is free again and can be re-taken.
    EXPECT_EQ(bank.freeReadPorts(10), 1);
    bank.takeReadPort(10, 60);
    EXPECT_EQ(bank.freeReadPorts(10), 0);
    EXPECT_EQ(bank.freeReadPorts(60), 1);
}

TEST(Resources, VRegBankPairing)
{
    EXPECT_EQ(vregBank(0), 0);
    EXPECT_EQ(vregBank(1), 0);
    EXPECT_EQ(vregBank(2), 1);
    EXPECT_EQ(vregBank(6), 3);
    EXPECT_EQ(vregBank(7), 3);
}

} // namespace
} // namespace mtv
