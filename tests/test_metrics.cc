/**
 * @file
 * Unit tests for src/core metrics helpers and the resource
 * primitives in src/core/resources.hh.
 */

#include <gtest/gtest.h>

#include <set>

#include "src/core/metrics.hh"
#include "src/core/resources.hh"
#include "src/core/sim_error.hh"

namespace mtv
{
namespace
{

TEST(Metrics, FuStateNamesMatchPaperTuples)
{
    EXPECT_EQ(fuStateName(0), "<   ,   ,  >");
    EXPECT_EQ(fuStateName(1), "<   ,   ,LD>");
    EXPECT_EQ(fuStateName(2), "<   ,FU1,  >");
    EXPECT_EQ(fuStateName(4), "<FU2,   ,  >");
    EXPECT_EQ(fuStateName(7), "<FU2,FU1,LD>");
}

TEST(Metrics, BlockReasonNamesAreDistinct)
{
    std::set<std::string> names;
    for (int i = 0; i < static_cast<int>(BlockReason::NumReasons); ++i)
        names.insert(blockReasonName(static_cast<BlockReason>(i)));
    EXPECT_EQ(names.size(),
              static_cast<size_t>(BlockReason::NumReasons));
}

TEST(Metrics, OccupationAndVopc)
{
    SimStats s;
    s.cycles = 1000;
    s.memRequests = 800;
    s.vecOpsFu1 = 600;
    s.vecOpsFu2 = 400;
    EXPECT_DOUBLE_EQ(s.memPortOccupation(), 0.8);
    EXPECT_DOUBLE_EQ(s.vopc(), 1.0);
    s.memPorts = 2;
    EXPECT_DOUBLE_EQ(s.memPortOccupation(), 0.4);
}

TEST(Metrics, ZeroCycleStatsAreSafe)
{
    const SimStats s;
    EXPECT_EQ(s.memPortOccupation(), 0.0);
    EXPECT_EQ(s.vopc(), 0.0);
    EXPECT_EQ(s.memPortIdleFraction(), 0.0);
}

TEST(Metrics, IdleFractionCountsLdClearStates)
{
    SimStats s;
    s.cycles = 100;
    s.stateHist[0] = 30;   // all idle
    s.stateHist[2] = 20;   // FU1 only
    s.stateHist[1] = 25;   // LD only
    s.stateHist[7] = 25;   // all busy
    EXPECT_DOUBLE_EQ(s.memPortIdleFraction(), 0.5);
}

/**
 * Span integration must agree exactly with per-cycle sampling for
 * arbitrary overlapping unit occupations — this is what lets the
 * event kernel account the (FU2, FU1, LD) histogram over skipped
 * idle spans.
 */
TEST(Metrics, JointStateIntegrationMatchesSampling)
{
    // FU2 busy [3, 9), FU1 busy [5, 7), two LD pipes [0, 4) and
    // [2, 11) (the LD bit is their OR).
    const UnitSpan units[] = {
        {2, 3, 9}, {1, 5, 7}, {0, 0, 4}, {0, 2, 11}};
    const size_t count = sizeof(units) / sizeof(units[0]);

    std::array<uint64_t, numFuStates> sampled{};
    for (uint64_t cycle = 1; cycle < 14; ++cycle) {
        int bits = 0;
        for (const auto &u : units) {
            if (u.from <= cycle && cycle < u.until)
                bits |= 1 << u.bit;
        }
        ++sampled[static_cast<size_t>(bits)];
    }

    std::array<uint64_t, numFuStates> integrated{};
    accumulateJointStates(integrated, 1, 14, units, count);
    EXPECT_EQ(integrated, sampled);

    // Splitting the span anywhere must not change the totals.
    std::array<uint64_t, numFuStates> split{};
    accumulateJointStates(split, 1, 6, units, count);
    accumulateJointStates(split, 6, 14, units, count);
    EXPECT_EQ(split, sampled);

    // Empty and inverted spans are no-ops.
    std::array<uint64_t, numFuStates> empty{};
    accumulateJointStates(empty, 5, 5, units, count);
    accumulateJointStates(empty, 7, 3, units, count);
    for (const uint64_t v : empty)
        EXPECT_EQ(v, 0u);
}

TEST(Metrics, SimErrorCarriesBlockedContexts)
{
    std::vector<BlockedContext> blocked;
    blocked.push_back({0, "flo52", BlockReason::MemPortBusy,
                       "vload v1, 0x100", 1});
    blocked.push_back({1, "tomcatv", BlockReason::SourceNotReady,
                       "", 0});
    const SimError err(123456, 2000, blocked);
    EXPECT_EQ(err.cycle(), 123456u);
    EXPECT_EQ(err.stalledCycles(), 2000u);
    ASSERT_EQ(err.contexts().size(), 2u);
    EXPECT_EQ(err.contexts()[0].reason, BlockReason::MemPortBusy);
    EXPECT_EQ(err.contexts()[1].program, "tomcatv");
    const std::string what = err.what();
    EXPECT_NE(what.find("deadlock"), std::string::npos);
    EXPECT_NE(what.find("mem-port-busy"), std::string::npos);
    EXPECT_NE(what.find("flo52"), std::string::npos);
    EXPECT_NE(what.find("2000"), std::string::npos);
}

TEST(Resources, ReportedNextEvents)
{
    VRegTiming reg;
    reg.writeDone = 40;
    reg.readBusy = 25;
    EXPECT_EQ(reg.nextEventAfter(10), 25u);
    EXPECT_EQ(reg.nextEventAfter(25), 40u);
    EXPECT_EQ(reg.nextEventAfter(40), 0u);

    BankPorts bank;
    bank.readUntil[0] = 8;
    bank.readUntil[1] = 12;
    bank.writeUntil = 10;
    EXPECT_EQ(bank.nextEventAfter(0), 8u);
    EXPECT_EQ(bank.nextEventAfter(8), 10u);
    EXPECT_EQ(bank.nextEventAfter(11), 12u);
    EXPECT_EQ(bank.nextEventAfter(12), 0u);

    EventMin em(10);
    em.consider(9);   // not pending
    em.consider(10);  // not strictly after
    EXPECT_EQ(em.next, 0u);
    em.consider(40);
    em.consider(15);
    em.consider(20);
    EXPECT_EQ(em.next, 15u);
}

TEST(Resources, PipeUnitOccupancy)
{
    PipeUnit unit;
    EXPECT_TRUE(unit.freeAt(0));
    unit.occupy(5, 10);
    EXPECT_FALSE(unit.freeAt(9));
    EXPECT_TRUE(unit.freeAt(10));
    EXPECT_FALSE(unit.busyAt(4));
    EXPECT_TRUE(unit.busyAt(5));
    EXPECT_TRUE(unit.busyAt(9));
    EXPECT_FALSE(unit.busyAt(10));
    EXPECT_EQ(unit.busyCycles(), 5u);
    unit.occupy(20, 22);
    EXPECT_EQ(unit.busyCycles(), 7u);
    unit.clear();
    EXPECT_EQ(unit.busyCycles(), 0u);
    EXPECT_TRUE(unit.freeAt(0));
}

TEST(Resources, VRegTimingPredicates)
{
    VRegTiming reg;
    EXPECT_TRUE(reg.completeAt(0));
    EXPECT_TRUE(reg.idleAt(0));
    reg.writeDone = 100;
    reg.readBusy = 50;
    EXPECT_FALSE(reg.completeAt(99));
    EXPECT_TRUE(reg.completeAt(100));
    EXPECT_FALSE(reg.idleAt(99));
    EXPECT_TRUE(reg.idleAt(100));
    reg.readBusy = 120;
    EXPECT_FALSE(reg.idleAt(110));
    EXPECT_TRUE(reg.idleAt(120));
}

TEST(Resources, BankPortsTwoReadersOneWriter)
{
    BankPorts bank;
    EXPECT_EQ(bank.freeReadPorts(0), 2);
    bank.takeReadPort(0, 100);
    EXPECT_EQ(bank.freeReadPorts(0), 1);
    bank.takeReadPort(0, 50);
    EXPECT_EQ(bank.freeReadPorts(0), 0);
    EXPECT_EQ(bank.freeReadPorts(50), 1);
    EXPECT_EQ(bank.freeReadPorts(100), 2);
    EXPECT_TRUE(bank.writeFreeAt(0));
    bank.writeUntil = 40;
    EXPECT_FALSE(bank.writeFreeAt(39));
    EXPECT_TRUE(bank.writeFreeAt(40));
}

TEST(Resources, BankPortReusesFreedSlot)
{
    BankPorts bank;
    bank.takeReadPort(0, 10);
    bank.takeReadPort(0, 100);
    // At t=10 the first port is free again and can be re-taken.
    EXPECT_EQ(bank.freeReadPorts(10), 1);
    bank.takeReadPort(10, 60);
    EXPECT_EQ(bank.freeReadPorts(10), 0);
    EXPECT_EQ(bank.freeReadPorts(60), 1);
}

TEST(Resources, VRegBankPairing)
{
    EXPECT_EQ(vregBank(0), 0);
    EXPECT_EQ(vregBank(1), 0);
    EXPECT_EQ(vregBank(2), 1);
    EXPECT_EQ(vregBank(6), 3);
    EXPECT_EQ(vregBank(7), 3);
}

} // namespace
} // namespace mtv
