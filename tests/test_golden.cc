/**
 * @file
 * Golden-digest regression test: pins the FNV-1a digest of the
 * canonical SimStats blob for one representative configuration of
 * every figure/table/ablation/extension bench, and checks that ALL
 * THREE kernels — cycle-stepped, event-driven and batched — reproduce
 * each digest bit-exactly.
 *
 * This is the end-to-end guard behind the event kernel: any change
 * to dispatch order, idle accounting, the joint-state histogram or
 * the stats codec shows up as a digest mismatch here, long before a
 * figure quietly drifts.
 *
 * The pinned values are a contract: they only change when the
 * *model* deliberately changes. To regenerate after such a change,
 * run with MTV_GOLDEN_PRINT=1 and paste the printed table:
 *
 *   MTV_GOLDEN_PRINT=1 ./test_golden --gtest_filter='*Pinned*'
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "src/api/run_spec.hh"
#include "src/core/sim.hh"
#include "src/store/stats_codec.hh"
#include "src/workload/program.hh"
#include "src/workload/suite.hh"

namespace
{

using namespace mtv;

/** Small scale so the whole table simulates in seconds. */
constexpr double goldenScale = 2e-5;

/** The 4-job queue slice shared by most job-queue cases. */
std::vector<std::string>
shortJobs()
{
    return {"flo52", "tomcatv", "trfd", "dyfesm"};
}

SimStats
simulate(const RunSpec &spec, SimKernel kernel)
{
    std::vector<std::unique_ptr<SyntheticProgram>> sources;
    std::vector<InstructionSource *> raw;
    sources.reserve(spec.programs.size());
    for (const auto &name : spec.programs) {
        sources.push_back(makeProgram(name, spec.scale));
        raw.push_back(sources.back().get());
    }
    VectorSim sim(spec.effectiveParams(), kernel);
    switch (spec.mode) {
      case SpecMode::Single:
        return sim.runSingle(*raw[0], spec.maxInstructions);
      case SpecMode::Group:
        return sim.runGroup(raw);
      case SpecMode::JobQueue:
        return sim.runJobQueue(raw);
    }
    return {};
}

uint64_t
digestOf(const SimStats &stats)
{
    const std::string blob = serializeSimStats(stats);
    return fnv1a64(blob.data(), blob.size());
}

struct GoldenCase
{
    const char *name;   ///< which bench this configuration mirrors
    RunSpec spec;
    uint64_t digest;    ///< pinned stepped==event digest
};

/**
 * One representative configuration per bench (21 benches), plus one
 * pin per RunSpec extension axis. Machine constructions mirror the
 * bench sources so a digest here guards the same simulator paths the
 * figures exercise.
 */
std::vector<GoldenCase>
goldenCases()
{
    std::vector<GoldenCase> cases;

    // bench_fig04_fu_usage: reference machine, Figure 4 latency.
    {
        MachineParams p = MachineParams::reference();
        p.memLatency = 70;
        cases.push_back({"fig04_fu_usage",
                         RunSpec::single("flo52", p, goldenScale),
                         0x2840a0bcfc55a5a4ull});
    }
    // bench_fig05_memport_idle: reference machine, mid latency.
    {
        MachineParams p = MachineParams::reference();
        p.memLatency = 30;
        cases.push_back({"fig05_memport_idle",
                         RunSpec::single("swm256", p, goldenScale),
                         0xf471e67359545ea1ull});
    }
    // bench_fig06_speedup / bench_fig07 / bench_fig08: section 4.1
    // group runs (the suiteGroupingSweep machinery).
    cases.push_back({"fig06_speedup_2ctx",
                     RunSpec::group({"swm256", "flo52"},
                                    MachineParams::multithreaded(2),
                                    goldenScale),
                     0x5b58679463901f8full});
    cases.push_back(
        {"fig07_memport_occupation_3ctx",
         RunSpec::group({"tomcatv", "flo52", "arc2d"},
                        MachineParams::multithreaded(3), goldenScale),
         0x7cab42a23d5ef2abull});
    cases.push_back(
        {"fig08_vopc_4ctx",
         RunSpec::group({"hydro2d", "swm256", "su2cor", "bdna"},
                        MachineParams::multithreaded(4), goldenScale),
         0x89f99eef2923ce47ull});
    // bench_fig09_profile: the full job queue on 2 contexts.
    cases.push_back({"fig09_profile",
                     RunSpec::jobQueue(jobQueueOrder(),
                                       MachineParams::multithreaded(2),
                                       goldenScale),
                     0x45f696ac3bba5149ull});
    // bench_fig10_latency_sweep: the latency-100 end points.
    {
        MachineParams ref = MachineParams::reference();
        ref.memLatency = 100;
        cases.push_back({"fig10_latency100_ref",
                         RunSpec::single("flo52", ref, goldenScale),
                         0xdb559d6aec71a23aull});
        MachineParams mth = MachineParams::multithreaded(4);
        mth.memLatency = 100;
        cases.push_back({"fig10_latency100_mth4",
                         RunSpec::jobQueue(shortJobs(), mth,
                                           goldenScale),
                         0xd9606c2e85a0d20bull});
    }
    // bench_fig11_xbar: slower register crossbar.
    {
        MachineParams p = MachineParams::multithreaded(3);
        p.readXbar = 3;
        p.writeXbar = 3;
        cases.push_back({"fig11_xbar33",
                         RunSpec::jobQueue(shortJobs(), p,
                                           goldenScale),
                         0xc7da1a70b2146a23ull});
    }
    // bench_fig12_fujitsu: dual-scalar decode.
    cases.push_back({"fig12_fujitsu",
                     RunSpec::jobQueue(shortJobs(),
                                       MachineParams::fujitsuDualScalar(),
                                       goldenScale),
                     0x96adef6e48a8ab03ull});
    // bench_table1_params: the Table 1 machines as-is.
    cases.push_back({"table1_reference",
                     RunSpec::single("dyfesm",
                                     MachineParams::reference(),
                                     goldenScale),
                     0x550a7c57193ec8e8ull});
    // bench_table2_groupings: a Table 2 column-3 grouping.
    {
        std::vector<std::string> group = {"swm256"};
        for (const auto &name : groupingColumn3())
            group.push_back(name);
        cases.push_back({"table2_grouping3",
                         RunSpec::group(group,
                                        MachineParams::multithreaded(3),
                                        goldenScale),
                         0xfad4e6b28e83b7cbull});
    }
    // bench_table3_workloads: per-program stats on the reference
    // machine (the workload side of Table 3).
    cases.push_back({"table3_workload",
                     RunSpec::single("tomcatv",
                                     MachineParams::reference(),
                                     goldenScale),
                     0x4fbc5d05c6845965ull});
    // bench_abl_banked_memory: banked-DRAM extension.
    {
        MachineParams p = MachineParams::multithreaded(2);
        p.memLatency = 90;
        p.bankedMemory = true;
        p.memBanks = 64;
        p.bankBusyCycles = 8;
        cases.push_back({"abl_banked_memory",
                         RunSpec::jobQueue(shortJobs(), p,
                                           goldenScale),
                         0xb1db3b31a94225c3ull});
    }
    // bench_abl_decode_width: two decode slots.
    {
        MachineParams p = MachineParams::multithreaded(3);
        p.decodeWidth = 2;
        cases.push_back({"abl_decode_width2",
                         RunSpec::jobQueue(shortJobs(), p,
                                           goldenScale),
                         0x1867e82ff3fb3e9ull});
    }
    // bench_abl_load_chaining: chaining out of loads allowed.
    {
        MachineParams p = MachineParams::multithreaded(2);
        p.loadChaining = true;
        cases.push_back({"abl_load_chaining",
                         RunSpec::jobQueue(shortJobs(), p,
                                           goldenScale),
                         0x346490b84fc20513ull});
    }
    // bench_abl_scheduling: every thread-switch policy.
    for (const SchedPolicy sched :
         {SchedPolicy::UnfairLowest, SchedPolicy::RoundRobin,
          SchedPolicy::FairLru}) {
        MachineParams p = MachineParams::multithreaded(3);
        p.sched = sched;
        static const uint64_t digests[] = {0xfc2fc4aa6a4c6393ull,
                                           0x7deebf634bc407d0ull,
                                           0x24c6b082571c8b81ull};
        cases.push_back({"abl_scheduling",
                         RunSpec::jobQueue(shortJobs(), p,
                                           goldenScale),
                         digests[static_cast<int>(sched)]});
    }
    // bench_diag_blocked: a program tripled on 3 contexts.
    cases.push_back({"diag_blocked",
                     RunSpec::jobQueue({"trfd", "trfd", "trfd"},
                                       MachineParams::multithreaded(3),
                                       goldenScale),
                     0xb3c076258484ab36ull});
    // bench_ext_decoupled: the HPCA-2'96 slip window.
    cases.push_back({"ext_decoupled",
                     RunSpec::single("su2cor",
                                     MachineParams::decoupledVector(4),
                                     goldenScale),
                     0x2800386dd7471c8aull});
    // bench_ext_multiport: Cray-style ports + simultaneous issue.
    {
        MachineParams p = MachineParams::crayStyle(2);
        p.decodeWidth = 2;
        cases.push_back({"ext_multiport_cray2w2",
                         RunSpec::jobQueue(shortJobs(), p,
                                           goldenScale),
                         0xc428ab37363d3b4eull});
    }
    // bench_ext_renaming: register renaming on the Cray machine.
    {
        MachineParams p = MachineParams::crayStyle(3);
        p.renaming = true;
        cases.push_back({"ext_renaming_cray3",
                         RunSpec::jobQueue(shortJobs(), p,
                                           goldenScale),
                         0xe785997d25dc39b3ull});
    }
    // RunSpec extension axes (the ext-* sweep families): one pin per
    // axis plus the fully-combined point, all on the same job-queue
    // slice so the folds are the only difference. The decouple and
    // rename pins exercise the batched kernel's per-point Event
    // fallback; the multiport pin stays on the fast lane.
    cases.push_back({"axis_multiport3",
                     RunSpec::jobQueue(shortJobs(),
                                       MachineParams::multithreaded(2),
                                       goldenScale)
                         .withExtensions(3, 0, 0),
                     0xeec98604fa88ff8full});
    cases.push_back({"axis_rename4",
                     RunSpec::jobQueue(shortJobs(),
                                       MachineParams::multithreaded(2),
                                       goldenScale)
                         .withExtensions(0, 4, 0),
                     0x4e3b63aff21b80e2ull});
    cases.push_back({"axis_decouple4",
                     RunSpec::jobQueue(shortJobs(),
                                       MachineParams::multithreaded(2),
                                       goldenScale)
                         .withExtensions(0, 0, 4),
                     0x66c36065cb1af191ull});
    cases.push_back({"axis_all_combined",
                     RunSpec::jobQueue(shortJobs(),
                                       MachineParams::multithreaded(2),
                                       goldenScale)
                         .withExtensions(3, 4, 4),
                     0xfaabe309e71e374ull});
    // bench_simspeed: the throughput benchmark's reference config.
    cases.push_back({"simspeed_reference",
                     RunSpec::single("flo52",
                                     MachineParams::reference(),
                                     goldenScale),
                     0xab883f974b79f049ull});
    return cases;
}

TEST(Golden, KernelParityAndPinnedDigests)
{
    const bool print = std::getenv("MTV_GOLDEN_PRINT") != nullptr;
    for (const GoldenCase &c : goldenCases()) {
        SCOPED_TRACE(std::string(c.name) + ": " + c.spec.canonical());
        const uint64_t stepped =
            digestOf(simulate(c.spec, SimKernel::Stepped));
        const uint64_t event =
            digestOf(simulate(c.spec, SimKernel::Event));
        const uint64_t batched =
            digestOf(simulate(c.spec, SimKernel::Batched));
        // The tentpole guarantees: event skipping is invisible, and
        // the batched fast lane (or its fallback) equally so.
        EXPECT_EQ(stepped, event);
        EXPECT_EQ(event, batched);
        if (print) {
            std::printf("    %-28s 0x%llxull\n", c.name,
                        static_cast<unsigned long long>(event));
            continue;
        }
        // The regression pin: neither kernel drifts over time.
        EXPECT_EQ(c.digest, event);
    }
}

/**
 * Digests must also agree between a run that went through the
 * engine/store serialization path and a direct simulation — i.e. the
 * blob itself is canonical. (Guards the ResultStore contract the
 * daemon's bit-identity smoke test depends on.)
 */
TEST(Golden, SerializationIsCanonical)
{
    const RunSpec spec =
        RunSpec::single("flo52", MachineParams::reference(),
                        goldenScale);
    const SimStats a = simulate(spec, SimKernel::Event);
    const SimStats b = simulate(spec, SimKernel::Stepped);
    EXPECT_EQ(serializeSimStats(a), serializeSimStats(b));
    const SimStats back = deserializeSimStats(serializeSimStats(a));
    EXPECT_EQ(serializeSimStats(back), serializeSimStats(a));
}

} // namespace
