/**
 * @file
 * Unit tests for src/isa: opcode taxonomy, instruction construction
 * and disassembly, machine parameters.
 */

#include <gtest/gtest.h>

#include "src/isa/instruction.hh"
#include "src/isa/machine_params.hh"
#include "src/isa/opcodes.hh"

namespace mtv
{
namespace
{

TEST(Opcodes, FuClassification)
{
    EXPECT_EQ(fuClass(Opcode::SAddInt), FuClass::Scalar);
    EXPECT_EQ(fuClass(Opcode::SLoad), FuClass::Scalar);
    EXPECT_EQ(fuClass(Opcode::VAdd), FuClass::VecAny);
    EXPECT_EQ(fuClass(Opcode::VLogic), FuClass::VecAny);
    EXPECT_EQ(fuClass(Opcode::VReduce), FuClass::VecAny);
    EXPECT_EQ(fuClass(Opcode::VMul), FuClass::VecFu2);
    EXPECT_EQ(fuClass(Opcode::VDiv), FuClass::VecFu2);
    EXPECT_EQ(fuClass(Opcode::VSqrt), FuClass::VecFu2);
    EXPECT_EQ(fuClass(Opcode::VLoad), FuClass::VecLoad);
    EXPECT_EQ(fuClass(Opcode::VGather), FuClass::VecLoad);
    EXPECT_EQ(fuClass(Opcode::VStore), FuClass::VecStore);
    EXPECT_EQ(fuClass(Opcode::VScatter), FuClass::VecStore);
}

TEST(Opcodes, VectorPredicate)
{
    EXPECT_FALSE(isVector(Opcode::SAddInt));
    EXPECT_FALSE(isVector(Opcode::SLoad));
    EXPECT_FALSE(isVector(Opcode::SetVL));
    EXPECT_TRUE(isVector(Opcode::VAdd));
    EXPECT_TRUE(isVector(Opcode::VLoad));
    EXPECT_TRUE(isVector(Opcode::VScatter));
}

TEST(Opcodes, MemoryPredicates)
{
    EXPECT_TRUE(isMemory(Opcode::SLoad));
    EXPECT_TRUE(isMemory(Opcode::VScatter));
    EXPECT_FALSE(isMemory(Opcode::VAdd));
    EXPECT_TRUE(isLoad(Opcode::VGather));
    EXPECT_FALSE(isLoad(Opcode::VStore));
    EXPECT_TRUE(isStore(Opcode::SStore));
    EXPECT_FALSE(isStore(Opcode::SLoad));
}

TEST(Opcodes, VectorArithExcludesMemoryAndScalar)
{
    EXPECT_TRUE(isVectorArith(Opcode::VAdd));
    EXPECT_TRUE(isVectorArith(Opcode::VDiv));
    EXPECT_FALSE(isVectorArith(Opcode::VLoad));
    EXPECT_FALSE(isVectorArith(Opcode::SAddFp));
}

TEST(Opcodes, MnemonicRoundTrip)
{
    for (int i = 0; i < static_cast<int>(Opcode::NumOpcodes); ++i) {
        const auto op = static_cast<Opcode>(i);
        EXPECT_EQ(opcodeFromMnemonic(mnemonic(op)), op)
            << "opcode " << i;
    }
    EXPECT_EQ(opcodeFromMnemonic("not-an-op"), Opcode::NumOpcodes);
}

TEST(Instruction, ScalarConstructor)
{
    const Instruction inst = makeScalar(Opcode::SAddInt, 3, 1, 2);
    EXPECT_EQ(inst.op, Opcode::SAddInt);
    EXPECT_EQ(inst.dst, 3);
    EXPECT_EQ(inst.srcA, 1);
    EXPECT_EQ(inst.srcB, 2);
    EXPECT_EQ(inst.elements(), 1u);
    EXPECT_EQ(inst.dstSpace(), RegSpace::S);
}

TEST(Instruction, ScalarMemConstructor)
{
    const Instruction ld = makeScalarMem(Opcode::SLoad, 4, 0x1000);
    EXPECT_EQ(ld.dst, 4);
    EXPECT_EQ(ld.addr, 0x1000u);
    const Instruction st = makeScalarMem(Opcode::SStore, 5, 0x2000);
    EXPECT_EQ(st.srcA, 5);
    EXPECT_EQ(st.dst, noReg);
}

TEST(Instruction, VectorArithConstructor)
{
    const Instruction inst =
        makeVectorArith(Opcode::VMul, 2, 0, 4, 100);
    EXPECT_EQ(inst.vl, 100);
    EXPECT_EQ(inst.elements(), 100u);
    EXPECT_TRUE(inst.writesVReg());
    EXPECT_TRUE(inst.readsVReg());
    EXPECT_EQ(inst.dstSpace(), RegSpace::V);
}

TEST(Instruction, VectorMemConstructor)
{
    const Instruction ld =
        makeVectorMem(Opcode::VLoad, 1, 64, 0x4000, 2);
    EXPECT_EQ(ld.dst, 1);
    EXPECT_EQ(ld.stride, 2);
    EXPECT_TRUE(ld.writesVReg());
    EXPECT_FALSE(ld.readsVReg());

    const Instruction st =
        makeVectorMem(Opcode::VStore, 3, 64, 0x8000);
    EXPECT_EQ(st.srcA, 3);
    EXPECT_FALSE(st.writesVReg());
    EXPECT_TRUE(st.readsVReg());
    EXPECT_EQ(st.dstSpace(), RegSpace::None);
}

TEST(Instruction, ReduceWritesScalar)
{
    const Instruction red =
        makeVectorArith(Opcode::VReduce, 2, 4, noReg, 128);
    EXPECT_EQ(red.dstSpace(), RegSpace::S);
    EXPECT_FALSE(red.writesVReg());
    EXPECT_TRUE(red.readsVReg());
}

TEST(Instruction, DisasmContainsOperands)
{
    const Instruction inst =
        makeVectorArith(Opcode::VAdd, 2, 0, 4, 100);
    const std::string text = inst.disasm();
    EXPECT_NE(text.find("v.add"), std::string::npos);
    EXPECT_NE(text.find("v2"), std::string::npos);
    EXPECT_NE(text.find("vl=100"), std::string::npos);

    const Instruction ld =
        makeVectorMem(Opcode::VLoad, 1, 64, 0x4000, 2);
    EXPECT_NE(ld.disasm().find("0x4000"), std::string::npos);
}

TEST(MachineParams, Table1Reconstruction)
{
    const MachineParams p = MachineParams::reference();
    EXPECT_EQ(p.latency(LatClass::IntAdd, false), 1);
    EXPECT_EQ(p.latency(LatClass::IntAdd, true), 4);
    EXPECT_EQ(p.latency(LatClass::FpMul, false), 2);
    EXPECT_EQ(p.latency(LatClass::FpMul, true), 7);
    EXPECT_EQ(p.latency(LatClass::Sqrt, true), 20);
    EXPECT_EQ(p.readXbar, 2);
    EXPECT_EQ(p.writeXbar, 2);
    EXPECT_EQ(p.memLatency, 50);
}

TEST(MachineParams, VectorDivFasterThanScalar)
{
    // The paper notes vector latencies exceed scalar ones *except*
    // for divide and square root.
    const MachineParams p = MachineParams::reference();
    EXPECT_LT(p.latency(LatClass::IntDiv, true),
              p.latency(LatClass::IntDiv, false));
    EXPECT_LT(p.latency(LatClass::Sqrt, true),
              p.latency(LatClass::Sqrt, false));
    EXPECT_GT(p.latency(LatClass::FpAdd, true),
              p.latency(LatClass::FpAdd, false));
}

TEST(MachineParams, OpLatencyUsesMemoryForLoads)
{
    MachineParams p = MachineParams::reference();
    p.memLatency = 77;
    EXPECT_EQ(p.opLatency(Opcode::SLoad), 77);
    EXPECT_EQ(p.opLatency(Opcode::SStore), 1);
    EXPECT_EQ(p.opLatency(Opcode::VAdd), 4);
    EXPECT_EQ(p.opLatency(Opcode::VMul), 7);
}

TEST(MachineParams, FactoriesDescribeThemselves)
{
    EXPECT_NE(MachineParams::reference().describe().find("reference"),
              std::string::npos);
    EXPECT_NE(MachineParams::multithreaded(3).describe().find(
                  "multithreaded"),
              std::string::npos);
    EXPECT_NE(MachineParams::fujitsuDualScalar().describe().find(
                  "dual-scalar"),
              std::string::npos);
}

TEST(MachineParams, FujitsuFactoryShape)
{
    const MachineParams p = MachineParams::fujitsuDualScalar();
    EXPECT_EQ(p.contexts, 2);
    EXPECT_TRUE(p.dualScalar);
    EXPECT_EQ(p.decodeWidth, 2);
    p.validate();  // must not fatal
}

TEST(MachineParams, SchedPolicyNames)
{
    EXPECT_EQ(schedPolicyName(SchedPolicy::UnfairLowest),
              "unfair-lowest");
    EXPECT_EQ(schedPolicyName(SchedPolicy::RoundRobin), "round-robin");
    EXPECT_EQ(schedPolicyName(SchedPolicy::FairLru), "fair-lru");
}

} // namespace
} // namespace mtv
