#!/usr/bin/env python3
"""CI perf gate: compare a fresh bench_simspeed JSON against the
committed baseline and fail on a sim-cycles/s regression.

Usage: perf_gate.py BASELINE FRESH [--threshold 0.25]
                    [--min-ratio A:B=R ...]

Every benchmark present in the baseline must be present in the fresh
run (a silently vanished benchmark would rot the gate) and must run at
>= (1 - threshold) x its baseline sim_cycles/s. Benchmarks new in the
fresh run pass through (they become gated once the baseline is
refreshed). The fresh JSON is uploaded by CI as the next baseline
artifact, so the committed file only needs refreshing when the
hardware class or the benchmark set changes.

--min-ratio NAME_A:NAME_B=R (repeatable) ratchets a *relative* speed
within the fresh run alone: fresh NAME_A must run at >= R x the
sim_cycles/s of fresh NAME_B (':' separates the names because
benchmark names themselves contain '/'). Unlike the baseline
comparison this is hardware-independent (both sides ran on the same
machine minutes apart), so it pins speedup claims — e.g. the batched
kernel's >= 3x over the event kernel on the Figure 10 sweep —
without a calibrated baseline.
"""

import argparse
import json
import sys


def rates(path):
    with open(path) as f:
        data = json.load(f)
    return {
        b["name"]: b["sim_cycles/s"]
        for b in data.get("benchmarks", [])
        if "sim_cycles/s" in b
    }


def parse_min_ratio(text):
    """'A:B=R' -> (A, B, R), with argparse-friendly errors."""
    pair, sep, ratio = text.rpartition("=")
    if not sep:
        raise argparse.ArgumentTypeError(
            f"expected NAME_A:NAME_B=RATIO, got {text!r}")
    a, sep, b = pair.partition(":")
    if not sep or not a or not b:
        raise argparse.ArgumentTypeError(
            f"expected NAME_A:NAME_B=RATIO, got {text!r}")
    try:
        return a, b, float(ratio)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"ratio in {text!r} is not a number")


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("baseline")
    parser.add_argument("fresh")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="maximum tolerated fractional regression")
    parser.add_argument("--min-ratio", action="append", default=[],
                        type=parse_min_ratio, metavar="A:B=R",
                        help="require fresh A >= R x fresh B "
                             "sim_cycles/s (repeatable)")
    args = parser.parse_args()

    baseline = rates(args.baseline)
    fresh = rates(args.fresh)
    if not baseline:
        print(f"perf gate: no sim_cycles/s rates in {args.baseline}")
        return 1

    failures = []
    width = max(len(name) for name in baseline)
    print(f"{'benchmark':<{width}} {'baseline':>12} {'fresh':>12} "
          f"{'ratio':>7}")
    for name in sorted(baseline):
        base = baseline[name]
        if name not in fresh:
            print(f"{name:<{width}} {base:>12.3e} {'MISSING':>12}")
            failures.append(f"{name}: missing from the fresh run")
            continue
        ratio = fresh[name] / base
        print(f"{name:<{width}} {base:>12.3e} {fresh[name]:>12.3e} "
              f"{ratio:>6.2f}x")
        if ratio < 1.0 - args.threshold:
            failures.append(
                f"{name}: {fresh[name]:.3e} sim_cycles/s is "
                f"{(1.0 - ratio) * 100:.0f}% below the baseline "
                f"{base:.3e} (tolerance {args.threshold * 100:.0f}%)")
    for name in sorted(set(fresh) - set(baseline)):
        print(f"{name:<{width}} {'(new)':>12} {fresh[name]:>12.3e}")

    for fast, slow, need in args.min_ratio:
        missing = [n for n in (fast, slow) if n not in fresh]
        if missing:
            failures.append(
                f"{fast}:{slow}: missing from the fresh run: "
                + ", ".join(missing))
            continue
        ratio = fresh[fast] / fresh[slow]
        print(f"{fast} / {slow}: {ratio:.2f}x (need >= {need:.2f}x)")
        if ratio < need:
            failures.append(
                f"{fast}: only {ratio:.2f}x the sim_cycles/s of "
                f"{slow}, ratchet requires >= {need:.2f}x")

    if failures:
        print("\nperf gate FAILED:")
        for failure in failures:
            print(f"  {failure}")
        return 1
    print(f"\nperf gate passed: {len(baseline)} benchmarks within "
          f"{args.threshold * 100:.0f}% of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
