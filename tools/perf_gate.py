#!/usr/bin/env python3
"""CI perf gate: compare a fresh bench_simspeed JSON against the
committed baseline and fail on a sim-cycles/s regression.

Usage: perf_gate.py BASELINE FRESH [--threshold 0.25]

Every benchmark present in the baseline must be present in the fresh
run (a silently vanished benchmark would rot the gate) and must run at
>= (1 - threshold) x its baseline sim_cycles/s. Benchmarks new in the
fresh run pass through (they become gated once the baseline is
refreshed). The fresh JSON is uploaded by CI as the next baseline
artifact, so the committed file only needs refreshing when the
hardware class or the benchmark set changes.
"""

import argparse
import json
import sys


def rates(path):
    with open(path) as f:
        data = json.load(f)
    return {
        b["name"]: b["sim_cycles/s"]
        for b in data.get("benchmarks", [])
        if "sim_cycles/s" in b
    }


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("baseline")
    parser.add_argument("fresh")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="maximum tolerated fractional regression")
    args = parser.parse_args()

    baseline = rates(args.baseline)
    fresh = rates(args.fresh)
    if not baseline:
        print(f"perf gate: no sim_cycles/s rates in {args.baseline}")
        return 1

    failures = []
    width = max(len(name) for name in baseline)
    print(f"{'benchmark':<{width}} {'baseline':>12} {'fresh':>12} "
          f"{'ratio':>7}")
    for name in sorted(baseline):
        base = baseline[name]
        if name not in fresh:
            print(f"{name:<{width}} {base:>12.3e} {'MISSING':>12}")
            failures.append(f"{name}: missing from the fresh run")
            continue
        ratio = fresh[name] / base
        print(f"{name:<{width}} {base:>12.3e} {fresh[name]:>12.3e} "
              f"{ratio:>6.2f}x")
        if ratio < 1.0 - args.threshold:
            failures.append(
                f"{name}: {fresh[name]:.3e} sim_cycles/s is "
                f"{(1.0 - ratio) * 100:.0f}% below the baseline "
                f"{base:.3e} (tolerance {args.threshold * 100:.0f}%)")
    for name in sorted(set(fresh) - set(baseline)):
        print(f"{name:<{width}} {'(new)':>12} {fresh[name]:>12.3e}")

    if failures:
        print("\nperf gate FAILED:")
        for failure in failures:
            print(f"  {failure}")
        return 1
    print(f"\nperf gate passed: {len(baseline)} benchmarks within "
          f"{args.threshold * 100:.0f}% of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
