/**
 * @file
 * mtvctl — client CLI of the mtvd experiment daemon.
 *
 * Usage (global flag first: --socket PATH, default $MTV_SOCKET or
 * /tmp/mtvd.sock):
 *   mtvctl ping                         is the daemon up?
 *   mtvctl run <program> [--contexts N] [--scale S]
 *                                       one single-mode point
 *   mtvctl sweep [--scale S] [--local]  the Figure 6 grouping sweep
 *                                       (250 group points); prints
 *                                       per-program speedups, served-
 *                                       from counts and a bit-exact
 *                                       result digest. --local runs
 *                                       the identical sweep in-process
 *                                       (no daemon) for comparison.
 *   mtvctl warm [--scale S]             run the sweep quietly, just to
 *                                       populate the daemon's store
 *   mtvctl stats                        cache/store counters
 *   mtvctl clear                        drop the daemon's memory cache
 *   mtvctl shutdown                     stop the daemon
 *
 * The digest is FNV-1a over the canonical binary SimStats blobs in
 * submission order: two invocations printing the same digest produced
 * bit-identical results, which is how the service smoke test checks
 * determinism across daemon restarts and against --local.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "src/api/engine.hh"
#include "src/api/sweep.hh"
#include "src/common/logging.hh"
#include "src/common/table.hh"
#include "src/service/protocol.hh"
#include "src/store/stats_codec.hh"
#include "src/workload/suite.hh"

namespace
{

using namespace mtv;

int
usage()
{
    std::fprintf(
        stderr,
        "usage: mtvctl [--socket PATH] <command> [options]\n"
        "  ping | stats | clear | shutdown\n"
        "  run <program> [--contexts N] [--scale S]\n"
        "  sweep [--scale S] [--local]\n"
        "  warm [--scale S]\n");
    return 2;
}

/** Outcome of one batch ("run" op) against the daemon. */
struct BatchOutcome
{
    std::vector<RunResult> results;  ///< submission order
    uint64_t simulated = 0;
    uint64_t cacheServed = 0;
    uint64_t storeServed = 0;
    uint64_t digest = 0;  ///< folded over blobs; 0 for quiet batches
};

Json
readResponse(LineChannel &channel)
{
    std::string line;
    if (!channel.readLine(&line))
        fatal("daemon closed the connection");
    Json response;
    std::string error;
    if (!Json::parse(line, &response, &error))
        fatal("malformed response: %s", error.c_str());
    if (response.has("error"))
        fatal("daemon error: %s",
              response.getString("error").c_str());
    return response;
}

LineChannel
connectChannel(const std::string &socketPath)
{
    std::string error;
    const int fd = connectToDaemon(socketPath, &error);
    if (fd < 0)
        fatal("cannot connect: %s", error.c_str());
    return LineChannel(fd);
}

/**
 * Run @p specs through the daemon, consuming the result stream in
 * submission order. Quiet batches skip blobs (and so the digest).
 */
BatchOutcome
runBatch(LineChannel &channel, const std::vector<RunSpec> &specs,
         bool quiet)
{
    Json request = Json::object();
    request.set("op", "run");
    Json specArray = Json::array();
    for (const RunSpec &spec : specs)
        specArray.push(spec.canonical());
    request.set("specs", std::move(specArray));
    request.set("quiet", quiet);
    if (!channel.writeLine(request.dump()))
        fatal("cannot send request (daemon gone?)");

    BatchOutcome outcome;
    outcome.digest = 0xcbf29ce484222325ull;
    outcome.results.reserve(specs.size());
    for (;;) {
        const Json line = readResponse(channel);
        if (line.getBool("done", false)) {
            outcome.simulated = line.get("simulated").asU64();
            outcome.cacheServed = line.get("cacheServed").asU64();
            outcome.storeServed = line.get("storeServed").asU64();
            break;
        }
        const size_t seq = line.get("seq").asU64();
        if (seq != outcome.results.size() || seq >= specs.size())
            fatal("result stream out of order (seq %zu)", seq);
        RunResult result;
        result.spec = specs[seq];
        result.cached = line.getBool("cached");
        result.fromStore = line.getBool("store");
        result.speedup = line.getNumber("speedup");
        result.mthOccupation = line.getNumber("mthOccupation");
        result.refOccupation = line.getNumber("refOccupation");
        result.mthVopc = line.getNumber("mthVopc");
        result.refVopc = line.getNumber("refVopc");
        if (line.has("blob")) {
            const std::string blob =
                hexDecode(line.getString("blob"));
            result.stats = deserializeSimStats(blob);
            outcome.digest =
                fnv1a64(blob.data(), blob.size(), outcome.digest);
        }
        outcome.results.push_back(std::move(result));
    }
    if (outcome.results.size() != specs.size())
        fatal("daemon returned %zu of %zu results",
              outcome.results.size(), specs.size());
    if (quiet)
        outcome.digest = 0;
    return outcome;
}

double
scaleArg(const char *text)
{
    const double v = std::atof(text);
    if (v <= 0)
        fatal("invalid scale '%s'", text);
    return v;
}

void
printSweepReport(const SweepBuilder &sweep,
                 const std::vector<RunResult> &results)
{
    Table t({"program", "contexts", "speedup", "runs"});
    for (const SweepSlice &slice : sweep.slices()) {
        const GroupAverages avg = averageOf(slice, results);
        t.row()
            .add(avg.program)
            .add(avg.contexts)
            .add(avg.speedup, 3)
            .add(avg.runs);
    }
    t.print();
}

int
cmdSweepLocal(double scale)
{
    SweepBuilder sweep = suiteGroupingSweep(scale);
    ExperimentEngine engine;
    const auto start = std::chrono::steady_clock::now();
    const std::vector<RunResult> results =
        engine.runAll(sweep.specs());
    const double seconds =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - start)
            .count();

    uint64_t digest = 0xcbf29ce484222325ull;
    uint64_t simulated = 0;
    uint64_t cacheServed = 0;
    for (const RunResult &r : results) {
        const std::string blob = serializeSimStats(r.stats);
        digest = fnv1a64(blob.data(), blob.size(), digest);
        if (r.cached)
            ++cacheServed;
        else
            ++simulated;
    }
    printSweepReport(sweep, results);
    std::printf("sweep: %zu points in %.2fs (local, no daemon)\n",
                results.size(), seconds);
    std::printf("served: simulated=%llu cache=%llu store=0\n",
                static_cast<unsigned long long>(simulated),
                static_cast<unsigned long long>(cacheServed));
    std::printf("digest: %016llx\n",
                static_cast<unsigned long long>(digest));
    return 0;
}

int
cmdSweep(const std::string &socketPath, double scale, bool quiet)
{
    SweepBuilder sweep = suiteGroupingSweep(scale);
    LineChannel channel = connectChannel(socketPath);
    const auto start = std::chrono::steady_clock::now();
    const BatchOutcome outcome =
        runBatch(channel, sweep.specs(), quiet);
    const double seconds =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - start)
            .count();

    if (!quiet)
        printSweepReport(sweep, outcome.results);
    std::printf("sweep: %zu points in %.2fs\n",
                outcome.results.size(), seconds);
    std::printf("served: simulated=%llu cache=%llu store=%llu\n",
                static_cast<unsigned long long>(outcome.simulated),
                static_cast<unsigned long long>(outcome.cacheServed),
                static_cast<unsigned long long>(outcome.storeServed));
    if (!quiet) {
        std::printf("digest: %016llx\n",
                    static_cast<unsigned long long>(outcome.digest));
    }
    return 0;
}

int
cmdRun(const std::string &socketPath, const std::string &program,
       int contexts, double scale)
{
    const MachineParams params =
        contexts <= 1 ? MachineParams::reference()
                      : MachineParams::multithreaded(contexts);
    const RunSpec spec = RunSpec::single(program, params, scale);
    LineChannel channel = connectChannel(socketPath);
    const BatchOutcome outcome =
        runBatch(channel, {spec}, /*quiet=*/false);
    const RunResult &r = outcome.results.at(0);
    std::printf("%s @ %d context%s: %llu cycles, %llu dispatches "
                "(%s)\n",
                program.c_str(), contexts, contexts == 1 ? "" : "s",
                static_cast<unsigned long long>(r.stats.cycles),
                static_cast<unsigned long long>(r.stats.dispatches),
                r.cached ? "cache"
                         : (r.fromStore ? "store" : "simulated"));
    std::printf("digest: %016llx\n",
                static_cast<unsigned long long>(outcome.digest));
    return 0;
}

int
cmdSimple(const std::string &socketPath, const std::string &op)
{
    LineChannel channel = connectChannel(socketPath);
    Json request = Json::object();
    request.set("op", op);
    if (!channel.writeLine(request.dump()))
        fatal("cannot send request (daemon gone?)");
    const Json response = readResponse(channel);
    std::printf("%s\n", response.dump().c_str());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace mtv;

    std::string socketPath = defaultSocketPath();
    int i = 1;
    if (i + 1 < argc && std::strcmp(argv[i], "--socket") == 0) {
        socketPath = argv[i + 1];
        i += 2;
    }
    if (i >= argc)
        return usage();
    const std::string command = argv[i++];

    double scale = workloadDefaultScale;
    bool local = false;
    int contexts = 1;
    std::string program;
    for (; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> const char * {
            if (i + 1 >= argc)
                fatal("missing value for %s", arg.c_str());
            return argv[++i];
        };
        if (arg == "--scale")
            scale = scaleArg(value());
        else if (arg == "--local")
            local = true;
        else if (arg == "--contexts")
            contexts = std::atoi(value());
        else if (arg.rfind("--", 0) == 0) {
            std::fprintf(stderr, "mtvctl: unknown option '%s'\n",
                         arg.c_str());
            return usage();
        } else if (program.empty())
            program = arg;
        else
            return usage();
    }

    if (command == "ping" || command == "stats" ||
        command == "clear" || command == "shutdown") {
        return cmdSimple(socketPath, command);
    }
    if (command == "run") {
        if (program.empty())
            return usage();
        return cmdRun(socketPath, program, contexts, scale);
    }
    if (command == "sweep") {
        return local ? cmdSweepLocal(scale)
                     : cmdSweep(socketPath, scale, /*quiet=*/false);
    }
    if (command == "warm")
        return cmdSweep(socketPath, scale, /*quiet=*/true);
    return usage();
}
