/**
 * @file
 * mtvctl — client CLI of the mtvd experiment daemon.
 *
 * Usage (global flags first: --socket PATH (default $MTV_SOCKET or
 * /tmp/mtvd.sock), --tcp HOST:PORT to reach a TCP daemon, or
 * --fleet EP1,EP2,... to scatter sweeps across several nodes
 * client-side — consistent-hash routing with mid-sweep failover, the
 * digest staying bit-identical to --local):
 *   mtvctl ping                         is the daemon up?
 *   mtvctl run <program> [--contexts N] [--scale S]
 *                                       one single-mode point
 *   mtvctl sweep [--scale S] [--family F] [--program P]
 *                [--contexts N] [--follow] [--local]
 *                                       a named sweep, expanded
 *                                       *server-side*: the client
 *                                       sends one ~100-byte request
 *                                       naming the family (default
 *                                       suite-grouping, the Figure 6
 *                                       sweep) and consumes the
 *                                       result stream. --follow
 *                                       prints each point as it
 *                                       arrives; --local runs the
 *                                       identical sweep in-process
 *                                       (no daemon) for comparison.
 *   mtvctl compare [--scale S] [--family F] [--contexts N] [--local]
 *                                       cross-design comparison: the
 *                                       daemon expands a design-
 *                                       parallel family (default
 *                                       ext-compare), runs it, pairs
 *                                       every design slice row-wise
 *                                       against slice 0 server-side,
 *                                       and answers one aggregated
 *                                       speedup table (the paper's
 *                                       Figure 6/12 rendering).
 *                                       --local computes the same
 *                                       table in-process; with
 *                                       --fleet the expansion is
 *                                       scattered across the nodes.
 *                                       All three print the same
 *                                       digest as the equivalent
 *                                       sweep — bit-identity is
 *                                       checkable across transports.
 *   mtvctl warm [--scale S] [--family F]
 *                                       run the sweep quietly, just to
 *                                       populate the daemon's store
 *   mtvctl cancel <id>                  cancel the in-flight batch(es)
 *                                       tagged with request id <id>,
 *                                       on any connection; queued
 *                                       points are skipped, points
 *                                       already simulating finish and
 *                                       stay cached
 *   mtvctl status                       request-lifecycle snapshot:
 *                                       queue depth, per-lane queue
 *                                       depths, per-connection
 *                                       in-flight batches,
 *                                       cancelled/reaped counters,
 *                                       per-shard store counters
 *   mtvctl metrics [--prom]             the daemon's full metrics
 *                                       registry (counters, gauges,
 *                                       latency histograms) as JSON;
 *                                       --prom prints Prometheus text
 *                                       exposition instead. Against a
 *                                       fleet router (or with
 *                                       --fleet), per-node trees plus
 *                                       fleet-wide counter totals.
 *   mtvctl stats                        cache/store counters
 *   mtvctl clear                        drop the daemon's memory cache
 *   mtvctl shutdown                     stop the daemon
 *
 * Numeric flags parse strictly (a typo like "--contexts abc" is a
 * fatal error, never a silent 0).
 *
 * The digest is FNV-1a over the canonical binary SimStats blobs in
 * submission order: two invocations printing the same digest produced
 * bit-identical results, which is how the service smoke test checks
 * determinism across daemon restarts and against --local. The daemon
 * folds the same digest server-side and reports it on the done line,
 * so quiet (warm) requests get it too; when both sides computed one,
 * mtvctl verifies they agree.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "src/api/engine.hh"
#include "src/api/sweep.hh"
#include "src/common/logging.hh"
#include "src/common/strutil.hh"
#include "src/common/table.hh"
#include "src/fleet/router.hh"
#include "src/service/protocol.hh"
#include "src/store/stats_codec.hh"
#include "src/workload/suite.hh"

namespace
{

using namespace mtv;

int
usage()
{
    std::fprintf(
        stderr,
        "usage: mtvctl [--socket PATH | --tcp HOST:PORT | "
        "--fleet EP1,EP2,...] [--wire binary|json] <command> "
        "[options]\n"
        "  ping | stats | status | clear | shutdown\n"
        "  run <program> [--contexts N] [--scale S]\n"
        "  sweep [--scale S] [--family F] [--program P] "
        "[--contexts N] [--follow] [--local]\n"
        "  compare [--scale S] [--family F] [--contexts N] "
        "[--local]\n"
        "  warm [--scale S] [--family F]\n"
        "  cancel <request-id>\n"
        "  metrics [--prom]\n"
        "(--fleet applies to sweep, compare, warm and metrics;\n"
        " --wire picks the result-point encoding — binary "
        "negotiates\n"
        " the v6 frame wire and falls back to json on old "
        "daemons)\n");
    return 2;
}

/** Result-point wire the client asks for (global --wire flag).
 *  Binary is the default; negotiation falls back to JSON against a
 *  daemon that does not speak it. */
WireFormat requestedWire = WireFormat::Binary;

/**
 * Negotiate the result-point wire on a fresh connection (streaming
 * commands only — one-line answers have no result points). Returns
 * true when the daemon confirmed binary frames; false means the
 * connection stays on JSON — either by request (--wire json) or
 * because an old daemon answered "unknown op" (the v5 fallback).
 */
bool
negotiateWire(LineChannel &channel)
{
    if (requestedWire != WireFormat::Binary)
        return false;
    Json hello = Json::object();
    hello.set("op", "hello");
    hello.set("wire", "binary");
    if (!channel.writeLine(hello.dump()))
        fatal("cannot send hello (daemon gone?)");
    std::string line;
    if (!channel.readLine(&line))
        fatal("daemon closed the connection during hello");
    Json response;
    std::string error;
    if (!Json::parse(line, &response, &error))
        fatal("malformed hello response: %s", error.c_str());
    return response.getBool("ok", false) &&
           response.getString("wire", "") == "binary";
}

/** Outcome of one streamed batch (run or sweep) from the daemon. */
struct BatchOutcome
{
    std::vector<RunResult> results;  ///< submission order
    uint64_t simulated = 0;
    uint64_t cacheServed = 0;
    uint64_t storeServed = 0;
    /** Folded over blobs client-side; for quiet batches the daemon's
     *  server-folded digest (reported on the done line) instead. */
    uint64_t digest = 0;
    /** True when the stream ended with a cancelled terminator (a
     *  `mtvctl cancel` from elsewhere hit this batch); results then
     *  hold only the points delivered before the cancel. */
    bool cancelled = false;
};

Json
readResponse(LineChannel &channel)
{
    std::string line;
    if (!channel.readLine(&line))
        fatal("daemon closed the connection");
    Json response;
    std::string error;
    if (!Json::parse(line, &response, &error))
        fatal("malformed response: %s", error.c_str());
    if (response.has("error"))
        fatal("daemon error: %s",
              response.getString("error").c_str());
    return response;
}

LineChannel
connectChannel(const Endpoint &endpoint)
{
    std::string error;
    const int fd = connectToEndpoint(endpoint, &error);
    if (fd < 0) {
        // One actionable line, not a raw connect errno: the common
        // case is simply that no daemon is up at that socket path /
        // TCP endpoint (or the socket file is stale).
        std::fprintf(stderr,
                     "mtvctl: daemon not running at %s (start it "
                     "with: %s)\n",
                     endpoint.describe().c_str(),
                     endpoint.startHint().c_str());
        std::exit(1);
    }
    return LineChannel(fd);
}

/** Called per result line, in submission order. */
using PointHook =
    std::function<void(const RunResult &result, size_t seq)>;

/**
 * Consume the streamed response of request @p id until its done
 * line: result lines are decoded (blob and all), the digest folded,
 * and @p hook invoked per point. @p expected is the point count from
 * the request (run) or the ack (sweep).
 */
BatchOutcome
consumeStream(LineChannel &channel, uint64_t id, size_t expected,
              const PointHook &hook)
{
    BatchOutcome outcome;
    outcome.digest = 0xcbf29ce484222325ull;
    outcome.results.reserve(expected);
    bool sawBlobs = false;
    for (;;) {
        // A v6 stream interleaves two message kinds: binary result
        // frames (wire=binary points) and JSON lines (every point of
        // a JSON stream, plus acks/done/errors in either mode).
        std::string msg;
        const LineChannel::MessageKind kind =
            channel.readMessage(&msg);
        if (kind == LineChannel::MessageKind::Eof)
            fatal("daemon closed the connection");
        if (kind == LineChannel::MessageKind::BadFrame)
            fatal("malformed binary frame from the daemon");
        if (kind == LineChannel::MessageKind::Frame) {
            ResultFrame frame;
            std::string frameError;
            if (!decodeResultFrame(msg, &frame, &frameError))
                fatal("bad result frame: %s", frameError.c_str());
            if (frame.id != id)
                fatal("frame for unknown request id %llu",
                      static_cast<unsigned long long>(frame.id));
            const size_t seq = frame.seq;
            if (seq != outcome.results.size() || seq >= expected)
                fatal("result stream out of order (seq %zu)", seq);
            if (frame.hasBlob) {
                // Same fold as the JSON path: raw canonical bytes,
                // here straight from the frame — no hex decode.
                outcome.digest = fnv1a64(frame.blob.data(),
                                         frame.blob.size(),
                                         outcome.digest);
                sawBlobs = true;
            }
            RunResult result = resultFromFrame(frame);
            if (hook)
                hook(result, seq);
            outcome.results.push_back(std::move(result));
            continue;
        }
        Json line;
        std::string parseError;
        if (!Json::parse(msg, &line, &parseError))
            fatal("malformed response: %s", parseError.c_str());
        if (line.has("error"))
            fatal("daemon error: %s",
                  line.getString("error").c_str());
        if (line.get("id").asU64() != id)
            fatal("response for unknown request id %llu",
                  static_cast<unsigned long long>(
                      line.get("id").asU64()));
        if (line.getBool("done", false) &&
            line.getBool("cancelled", false)) {
            outcome.cancelled = true;
            break;
        }
        if (line.getBool("done", false)) {
            outcome.simulated = line.get("simulated").asU64();
            outcome.cacheServed = line.get("cacheServed").asU64();
            outcome.storeServed = line.get("storeServed").asU64();
            const std::string server = line.getString("digest");
            if (!sawBlobs) {
                // Quiet batch: adopt the server-folded digest.
                outcome.digest =
                    std::strtoull(server.c_str(), nullptr, 16);
            } else if (server !=
                       format("%016llx",
                              static_cast<unsigned long long>(
                                  outcome.digest))) {
                fatal("server digest %s != client digest %016llx",
                      server.c_str(),
                      static_cast<unsigned long long>(
                          outcome.digest));
            }
            break;
        }
        const size_t seq = line.get("seq").asU64();
        if (seq != outcome.results.size() || seq >= expected)
            fatal("result stream out of order (seq %zu)", seq);
        std::string blob;
        RunResult result = resultFromJson(line, &blob);
        if (!blob.empty()) {
            outcome.digest =
                fnv1a64(blob.data(), blob.size(), outcome.digest);
            sawBlobs = true;
        }
        if (hook)
            hook(result, seq);
        outcome.results.push_back(std::move(result));
    }
    if (!outcome.cancelled && outcome.results.size() != expected)
        fatal("daemon returned %zu of %zu results",
              outcome.results.size(), expected);
    return outcome;
}

void
printSliceReport(const std::vector<SweepSlice> &slices,
                 const std::vector<RunResult> &results)
{
    if (slices.empty())
        return;
    Table t({"label", "contexts", "speedup", "runs"});
    for (const SweepSlice &slice : slices) {
        if (slice.count == 0 ||
            results[slice.first].spec.mode != SpecMode::Group) {
            // Non-group slices (e.g. the latency family) have no
            // speedup average; print cycles of each point instead
            // via --follow.
            continue;
        }
        const GroupAverages avg = averageOf(slice, results);
        t.row()
            .add(avg.program)
            .add(avg.contexts)
            .add(avg.speedup, 3)
            .add(avg.runs);
    }
    t.print();
}

void
printServed(uint64_t simulated, uint64_t cache, uint64_t store)
{
    std::printf("served: simulated=%llu cache=%llu store=%llu\n",
                static_cast<unsigned long long>(simulated),
                static_cast<unsigned long long>(cache),
                static_cast<unsigned long long>(store));
}

void
printDigest(uint64_t digest)
{
    std::printf("digest: %016llx\n",
                static_cast<unsigned long long>(digest));
}

/** The --follow per-point line. */
void
printPoint(const RunResult &r, size_t seq, size_t total)
{
    std::printf("point %zu/%zu %s: %llu cycles%s%s\n", seq + 1,
                total, r.spec.programs[0].c_str(),
                static_cast<unsigned long long>(r.stats.cycles),
                r.spec.mode == SpecMode::Group
                    ? format(", speedup %.3f", r.speedup).c_str()
                    : "",
                r.cached ? " (cache)"
                         : (r.fromStore ? " (store)" : ""));
}

/** Render a compare response's rows (the Figure 6/12 table). */
void
printCompareTable(const std::string &baseline,
                  const std::vector<CompareRow> &rows)
{
    Table t({"design", "contexts", "ports", "latency", "cycles (k)",
             "speedup", "occupation", "VOPC"});
    for (const CompareRow &row : rows) {
        t.row()
            .add(row.design)
            .add(row.contexts)
            .add(row.ports)
            .add(row.memLatency)
            .add(static_cast<double>(row.cycles) / 1e3, 1)
            .add(row.speedup, 3)
            .add(row.occupation, 3)
            .add(row.vopc, 3);
    }
    t.print();
    std::printf("speedup: row-wise vs the '%s' slice\n",
                baseline.c_str());
}

int
cmdCompareLocal(const SweepRequest &request)
{
    SweepBuilder sweep = expandSweep(request);
    ExperimentEngine engine;
    const auto start = std::chrono::steady_clock::now();
    const std::vector<RunResult> results =
        engine.runAll(sweep.specs());
    const double seconds =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - start)
            .count();

    uint64_t digest = 0xcbf29ce484222325ull;
    uint64_t simulated = 0;
    uint64_t cacheServed = 0;
    for (const RunResult &r : results) {
        const std::string blob = serializeSimStats(r.stats);
        digest = fnv1a64(blob.data(), blob.size(), digest);
        if (r.cached)
            ++cacheServed;
        else
            ++simulated;
    }
    // compareDesigns fatal()s (with the offending slice named) when
    // the family is not design-parallel — the right CLI behavior.
    printCompareTable(sweep.slices().at(0).label,
                      compareDesigns(sweep.slices(), results));
    std::printf("compare: %zu points in %.2fs (family %s, local, no "
                "daemon)\n",
                results.size(), seconds, request.family.c_str());
    printServed(simulated, cacheServed, 0);
    printDigest(digest);
    return 0;
}

int
cmdCompare(const Endpoint &endpoint, const SweepRequest &request)
{
    LineChannel channel = connectChannel(endpoint);
    Json line = sweepRequestToJson(request);
    line.set("op", "compare");
    line.set("id", 1);
    if (!channel.writeLine(line.dump()))
        fatal("cannot send request (daemon gone?)");

    const Json response = readResponse(channel);
    if (!response.getBool("compare", false))
        fatal("expected a compare response, got: %s",
              response.dump().c_str());
    std::vector<CompareRow> rows;
    for (const Json &row : response.get("rows").asArray())
        rows.push_back(compareRowFromJson(row));
    printCompareTable(response.getString("baseline"), rows);
    std::printf("compare: %llu points (family %s%s)\n",
                static_cast<unsigned long long>(
                    response.get("count").asU64()),
                response.getString("family").c_str(),
                response.getBool("fleet", false) ? ", via fleet router"
                                                 : "");
    printServed(response.get("simulated").asU64(),
                response.get("cacheServed").asU64(),
                response.get("storeServed").asU64());
    std::printf("digest: %s\n",
                response.getString("digest").c_str());
    return 0;
}

/** Client-side fleet compare: scatter the expansion, gather, fold
 *  the table locally — same digest as a daemon or --local compare. */
int
cmdCompareFleet(const std::vector<std::string> &fleetNodes,
                const SweepRequest &request)
{
    FleetRouter router(fleetNodes);
    const auto start = std::chrono::steady_clock::now();
    const FleetOutcome outcome = router.runSweep(request);
    const double seconds =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - start)
            .count();

    printCompareTable(
        outcome.slices.at(0).label,
        compareDesigns(outcome.slices, outcome.results));
    std::printf("compare: %zu points in %.2fs (family %s, fleet of "
                "%zu nodes)\n",
                outcome.results.size(), seconds,
                request.family.c_str(), router.nodeCount());
    printServed(outcome.simulated, outcome.cacheServed,
                outcome.storeServed);
    printDigest(outcome.digest);
    return 0;
}

int
cmdSweepLocal(const SweepRequest &request)
{
    SweepBuilder sweep = expandSweep(request);
    ExperimentEngine engine;
    const auto start = std::chrono::steady_clock::now();
    const std::vector<RunResult> results =
        engine.runAll(sweep.specs());
    const double seconds =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - start)
            .count();

    uint64_t digest = 0xcbf29ce484222325ull;
    uint64_t simulated = 0;
    uint64_t cacheServed = 0;
    for (const RunResult &r : results) {
        const std::string blob = serializeSimStats(r.stats);
        digest = fnv1a64(blob.data(), blob.size(), digest);
        if (r.cached)
            ++cacheServed;
        else
            ++simulated;
    }
    printSliceReport(sweep.slices(), results);
    std::printf("sweep: %zu points in %.2fs (local, no daemon)\n",
                results.size(), seconds);
    printServed(simulated, cacheServed, 0);
    printDigest(digest);
    return 0;
}

int
cmdSweep(const Endpoint &endpoint, const SweepRequest &request,
         bool quiet, bool follow)
{
    LineChannel channel = connectChannel(endpoint);
    const bool binaryWire = negotiateWire(channel);
    constexpr uint64_t id = 1;
    Json line = sweepRequestToJson(request);
    line.set("op", "sweep");
    line.set("id", id);
    line.set("quiet", quiet);
    if (!channel.writeLine(line.dump()))
        fatal("cannot send request (daemon gone?)");

    // The ack carries the server-side expansion's shape: how many
    // points are coming and which slices they average into.
    const Json ack = readResponse(channel);
    if (!ack.getBool("ack", false) || ack.get("id").asU64() != id)
        fatal("expected sweep ack, got: %s", ack.dump().c_str());
    const size_t count = ack.get("count").asU64();
    std::vector<SweepSlice> slices;
    for (const Json &slice : ack.get("slices").asArray())
        slices.push_back(sliceFromJson(slice));

    const auto start = std::chrono::steady_clock::now();
    const BatchOutcome outcome = consumeStream(
        channel, id, count,
        [follow, count](const RunResult &r, size_t seq) {
            if (follow)
                printPoint(r, seq, count);
        });
    const double seconds =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - start)
            .count();

    if (outcome.cancelled) {
        std::fprintf(stderr,
                     "mtvctl: sweep cancelled by the daemon after "
                     "%zu/%zu points (%.2fs)\n",
                     outcome.results.size(), count, seconds);
        return 3;
    }
    if (!quiet)
        printSliceReport(slices, outcome.results);
    std::printf("sweep: %zu points in %.2fs (family %s)\n",
                outcome.results.size(), seconds,
                request.family.c_str());
    // The stream's wire throughput, client-side: every byte the
    // daemon sent this connection (results AND control lines).
    std::printf("wire: %s received=%llu bytes (%.1f MB/s)\n",
                binaryWire ? "binary" : "json",
                static_cast<unsigned long long>(channel.bytesRead()),
                seconds > 0
                    ? static_cast<double>(channel.bytesRead()) /
                          seconds / 1e6
                    : 0.0);
    printServed(outcome.simulated, outcome.cacheServed,
                outcome.storeServed);
    printDigest(outcome.digest);
    return 0;
}

/**
 * The client-side fleet path: expand the family once, consistent-
 * hash every point across the nodes, stream all subsets in parallel,
 * and fold one digest in global submission order. A node dying
 * mid-sweep (SIGKILL and all) is absorbed: its unfinished points are
 * rerouted to the survivors and the sweep completes with the same
 * digest a single node (or --local) would print.
 */
int
cmdSweepFleet(const std::vector<std::string> &fleetNodes,
              const SweepRequest &request, bool quiet, bool follow)
{
    FleetRouter router(fleetNodes);

    size_t count = 0;
    std::vector<SweepSlice> slices;
    const auto start = std::chrono::steady_clock::now();
    const FleetOutcome outcome = router.runSweep(
        request,
        [follow, &count](size_t global, const RunResult &r,
                         const std::string &) {
            // Arrival order, tagged with the global index — the
            // fleet analogue of --follow.
            if (follow)
                printPoint(r, global, count);
        },
        [&](size_t total, const std::vector<SweepSlice> &expanded) {
            count = total;
            slices = expanded;
        });
    const double seconds =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - start)
            .count();

    if (!quiet)
        printSliceReport(slices, outcome.results);
    std::printf("sweep: %zu points in %.2fs (family %s, fleet of "
                "%zu nodes)\n",
                outcome.results.size(), seconds,
                request.family.c_str(), router.nodeCount());
    // One machine-friendly line (fleet_smoke.sh greps it): how much
    // failover the sweep absorbed.
    std::string dead;
    for (const FleetNodeStatus &node : router.status()) {
        if (node.alive)
            continue;
        if (!dead.empty())
            dead += ",";
        dead += node.name;
    }
    std::printf("fleet: nodes=%zu alive=%zu rerouted=%llu dead=%s\n",
                router.nodeCount(), router.aliveCount(),
                static_cast<unsigned long long>(outcome.rerouted),
                dead.empty() ? "none" : dead.c_str());
    printServed(outcome.simulated, outcome.cacheServed,
                outcome.storeServed);
    printDigest(outcome.digest);
    return 0;
}

int
cmdRun(const Endpoint &endpoint, const std::string &program,
       int contexts, double scale)
{
    const MachineParams params =
        contexts <= 1 ? MachineParams::reference()
                      : MachineParams::multithreaded(contexts);
    const RunSpec spec = RunSpec::single(program, params, scale);
    LineChannel channel = connectChannel(endpoint);
    negotiateWire(channel);
    Json request = Json::object();
    request.set("op", "run");
    request.set("id", 1);
    Json specArray = Json::array();
    specArray.push(spec.canonical());
    request.set("specs", std::move(specArray));
    if (!channel.writeLine(request.dump()))
        fatal("cannot send request (daemon gone?)");
    const BatchOutcome outcome =
        consumeStream(channel, 1, 1, nullptr);
    if (outcome.cancelled) {
        std::fprintf(stderr, "mtvctl: run cancelled by the daemon\n");
        return 3;
    }
    const RunResult &r = outcome.results.at(0);
    std::printf("%s @ %d context%s: %llu cycles, %llu dispatches "
                "(%s)\n",
                program.c_str(), contexts, contexts == 1 ? "" : "s",
                static_cast<unsigned long long>(r.stats.cycles),
                static_cast<unsigned long long>(r.stats.dispatches),
                r.cached ? "cache"
                         : (r.fromStore ? "store" : "simulated"));
    printDigest(outcome.digest);
    return 0;
}

int
cmdSimple(const Endpoint &endpoint, const std::string &op)
{
    LineChannel channel = connectChannel(endpoint);
    Json request = Json::object();
    request.set("op", op);
    if (!channel.writeLine(request.dump()))
        fatal("cannot send request (daemon gone?)");
    const Json response = readResponse(channel);
    std::printf("%s\n", response.dump().c_str());
    return 0;
}

int
cmdCancel(const Endpoint &endpoint, uint64_t requestId)
{
    LineChannel channel = connectChannel(endpoint);
    Json request = Json::object();
    request.set("op", "cancel");
    request.set("id", requestId);
    if (!channel.writeLine(request.dump()))
        fatal("cannot send request (daemon gone?)");
    const Json response = readResponse(channel);
    const uint64_t hit = response.get("cancelled").asU64();
    std::printf("cancelled %llu batch%s tagged with request id "
                "%llu\n",
                static_cast<unsigned long long>(hit),
                hit == 1 ? "" : "es",
                static_cast<unsigned long long>(requestId));
    // "Nothing matched" is worth a nonzero exit: the id was probably
    // mistyped or the batch already finished.
    return hit > 0 ? 0 : 1;
}

/**
 * Dump the daemon's metrics registry: raw JSON (machine-friendly,
 * like `mtvctl stats`), or the Prometheus text exposition with
 * --prom. A fleet router answers with per-node trees and counter
 * totals; those are printed as JSON too (prom is per-node — scrape
 * the nodes directly for exposition).
 */
int
cmdMetrics(const Endpoint &endpoint, bool prom)
{
    LineChannel channel = connectChannel(endpoint);
    Json request = Json::object();
    request.set("op", "metrics");
    request.set("prom", prom);
    if (!channel.writeLine(request.dump()))
        fatal("cannot send request (daemon gone?)");
    const Json response = readResponse(channel);
    if (prom && response.has("prom")) {
        std::fputs(response.getString("prom").c_str(), stdout);
        return 0;
    }
    std::printf("%s\n", response.dump().c_str());
    return 0;
}

/**
 * The client-side fleet analogue: ask every node for its registry
 * and print the same response shape a fleet router's "metrics" op
 * produces (per-node trees + counter totals), minus the "router"
 * entry — this process has no router registry worth reporting.
 * Unreachable nodes degrade to error entries; exits 1 only when NO
 * node answered.
 */
int
cmdMetricsFleet(const std::vector<std::string> &fleetNodes)
{
    std::map<std::string, uint64_t> totals;
    Json nodes = Json::array();
    size_t gatheredCount = 0;
    for (const std::string &name : fleetNodes) {
        Json node = Json::object();
        node.set("endpoint", name);
        Json metrics;
        bool gathered = false;
        std::string error;
        const int fd =
            connectToEndpoint(parseEndpoint(name), &error);
        if (fd >= 0) {
            LineChannel channel(fd);
            Json request = Json::object();
            request.set("op", "metrics");
            std::string line;
            if (channel.writeLine(request.dump()) &&
                channel.readLine(&line)) {
                Json response;
                std::string parseError;
                if (!Json::parse(line, &response, &parseError)) {
                    error = "malformed metrics response: " +
                            parseError;
                } else if (!response.getBool("ok")) {
                    error = response.getString("error",
                                               response.dump());
                } else if (response.get("metrics").type() ==
                           Json::Type::Object) {
                    metrics = response.get("metrics");
                    gathered = true;
                } else {
                    error = "metrics response carries no metrics "
                            "object";
                }
            } else {
                error = "node closed the connection";
            }
        }
        node.set("ok", gathered);
        if (gathered) {
            ++gatheredCount;
            if (metrics.get("counters").type() ==
                Json::Type::Object) {
                for (const auto &counter :
                     metrics.get("counters").asMembers()) {
                    totals[counter.first] += static_cast<uint64_t>(
                        counter.second.asNumber());
                }
            }
            node.set("metrics", std::move(metrics));
        } else {
            node.set("error", error);
        }
        nodes.push(std::move(node));
    }
    Json out = Json::object();
    out.set("ok", gatheredCount > 0);
    out.set("fleet", true);
    out.set("nodes", std::move(nodes));
    Json totalsJson = Json::object();
    for (const auto &total : totals)
        totalsJson.set(total.first, total.second);
    out.set("totals", std::move(totalsJson));
    std::printf("%s\n", out.dump().c_str());
    return gatheredCount > 0 ? 0 : 1;
}

int
cmdStatus(const Endpoint &endpoint)
{
    LineChannel channel = connectChannel(endpoint);
    Json request = Json::object();
    request.set("op", "status");
    if (!channel.writeLine(request.dump()))
        fatal("cannot send request (daemon gone?)");
    const Json s = readResponse(channel);
    if (s.getBool("fleet", false)) {
        // A fleet router answers with its membership/health table
        // instead of engine counters.
        for (const Json &node : s.get("nodes").asArray()) {
            std::printf("node %s: %s served=%llu%s%s\n",
                        node.getString("endpoint").c_str(),
                        node.getBool("alive") ? "alive" : "dead",
                        static_cast<unsigned long long>(
                            node.get("served").asU64()),
                        node.has("error") ? " error=" : "",
                        node.getString("error").c_str());
        }
        return 0;
    }
    if (s.has("kernel"))
        std::printf("kernel: %s\n", s.getString("kernel").c_str());
    std::printf("queue depth: %llu\n",
                static_cast<unsigned long long>(
                    s.get("queueDepth").asU64()));
    if (s.get("lanes").type() == Json::Type::Array) {
        for (const Json &lane : s.get("lanes").asArray()) {
            std::printf("lane %llu: depth=%llu\n",
                        static_cast<unsigned long long>(
                            lane.get("lane").asU64()),
                        static_cast<unsigned long long>(
                            lane.get("depth").asU64()));
        }
    }
    std::printf("active requests: %llu\n",
                static_cast<unsigned long long>(
                    s.get("activeRequests").asU64()));
    std::printf("completed points: %llu\n",
                static_cast<unsigned long long>(
                    s.get("completedPoints").asU64()));
    const Json &counters = s.get("counters");
    // One machine-friendly line (service_smoke.sh greps it).
    std::printf("counters: cancelledBatches=%llu reapedBatches=%llu "
                "cancelledPoints=%llu discardedPoints=%llu\n",
                static_cast<unsigned long long>(
                    counters.get("cancelledBatches").asU64()),
                static_cast<unsigned long long>(
                    counters.get("reapedBatches").asU64()),
                static_cast<unsigned long long>(
                    counters.get("cancelledPoints").asU64()),
                static_cast<unsigned long long>(
                    counters.get("discardedPoints").asU64()));
    if (s.get("shards").type() == Json::Type::Array) {
        for (const Json &shard : s.get("shards").asArray()) {
            std::printf(
                "shard %llu: appends=%llu hits=%llu misses=%llu "
                "records=%llu recovered=%llu dropped=%llu\n",
                static_cast<unsigned long long>(
                    shard.get("shard").asU64()),
                static_cast<unsigned long long>(
                    shard.get("appends").asU64()),
                static_cast<unsigned long long>(
                    shard.get("hits").asU64()),
                static_cast<unsigned long long>(
                    shard.get("misses").asU64()),
                static_cast<unsigned long long>(
                    shard.get("records").asU64()),
                static_cast<unsigned long long>(
                    shard.get("recovered").asU64()),
                static_cast<unsigned long long>(
                    shard.get("dropped").asU64()));
        }
    }
    for (const Json &conn : s.get("connections").asArray()) {
        std::string ids;
        for (const Json &id : conn.get("requests").asArray()) {
            if (!ids.empty())
                ids += " ";
            ids += format("%llu", static_cast<unsigned long long>(
                                      id.asU64()));
        }
        std::printf("connection %llu: %llu in flight (request ids: "
                    "%s)\n",
                    static_cast<unsigned long long>(
                        conn.get("client").asU64()),
                    static_cast<unsigned long long>(
                        conn.get("inflight").asU64()),
                    ids.c_str());
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace mtv;

    Endpoint endpoint = Endpoint::unixSocket(defaultSocketPath());
    std::vector<std::string> fleetNodes;
    int i = 1;
    while (i + 1 < argc) {
        if (std::strcmp(argv[i], "--socket") == 0) {
            endpoint = Endpoint::unixSocket(argv[i + 1]);
            i += 2;
        } else if (std::strcmp(argv[i], "--tcp") == 0) {
            const HostPort hp = parseHostPort(argv[i + 1], "--tcp");
            endpoint = Endpoint::tcp(hp.host, hp.port);
            i += 2;
        } else if (std::strcmp(argv[i], "--fleet") == 0) {
            for (const std::string &node :
                 split(argv[i + 1], ',')) {
                if (node.empty())
                    continue;
                // Validate eagerly: a typo'd "host:abc" node must
                // die here, not when the sweep first routes to it.
                parseEndpoint(node);
                fleetNodes.push_back(node);
            }
            if (fleetNodes.empty())
                fatal("--fleet expects a comma-separated node list");
            i += 2;
        } else if (std::strcmp(argv[i], "--wire") == 0) {
            const std::string wanted = argv[i + 1];
            if (wanted == "json")
                requestedWire = WireFormat::Json;
            else if (wanted == "binary")
                requestedWire = WireFormat::Binary;
            else
                fatal("--wire expects json or binary, got '%s'",
                      wanted.c_str());
            i += 2;
        } else {
            break;
        }
    }
    if (i >= argc)
        return usage();
    const std::string command = argv[i++];

    SweepRequest sweepRequest;
    sweepRequest.family = "suite-grouping";
    bool familySet = false;
    bool local = false;
    bool follow = false;
    bool prom = false;
    int contexts = 0;  // 0 = not specified (family/run defaults)
    std::string program;
    for (; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> const char * {
            if (i + 1 >= argc)
                fatal("missing value for %s", arg.c_str());
            return argv[++i];
        };
        if (arg == "--scale")
            sweepRequest.scale = parsePositiveFlag(value(), "--scale");
        else if (arg == "--family") {
            sweepRequest.family = value();
            familySet = true;
        }
        else if (arg == "--program")
            program = value();
        else if (arg == "--local")
            local = true;
        else if (arg == "--follow")
            follow = true;
        else if (arg == "--prom")
            prom = true;
        else if (arg == "--contexts")
            // MachineParams::validate() accepts [1,8] (the paper
            // stops at 4, the extension benches go to 8).
            contexts = static_cast<int>(
                parseIntFlag(value(), "--contexts", 1, 8));
        else if (arg.rfind("--", 0) == 0) {
            std::fprintf(stderr, "mtvctl: unknown option '%s'\n",
                         arg.c_str());
            return usage();
        } else if (program.empty())
            program = arg;
        else
            return usage();
    }
    sweepRequest.program = program;
    // An explicit --contexts is forwarded verbatim (1 = the
    // reference machine's count); 0 keeps the family defaults.
    sweepRequest.contexts = contexts;
    // compare defaults to the one family built for it; an explicit
    // --family (any design-parallel one, e.g. ext-renaming) wins.
    if (command == "compare" && !familySet)
        sweepRequest.family = "ext-compare";

    if (!fleetNodes.empty() && command != "sweep" &&
        command != "compare" && command != "warm" &&
        command != "metrics") {
        fatal("--fleet applies to sweep, compare, warm and metrics "
              "only (use --socket or --tcp to address one node)");
    }

    if (command == "ping" || command == "stats" ||
        command == "clear" || command == "shutdown") {
        return cmdSimple(endpoint, command);
    }
    if (command == "status")
        return cmdStatus(endpoint);
    if (command == "metrics") {
        return fleetNodes.empty() ? cmdMetrics(endpoint, prom)
                                  : cmdMetricsFleet(fleetNodes);
    }
    if (command == "cancel") {
        // The "program" slot caught the positional argument; it is
        // really the request id to cancel.
        if (program.empty())
            return usage();
        return cmdCancel(endpoint,
                         static_cast<uint64_t>(parseIntFlag(
                             program.c_str(), "cancel <request-id>",
                             1, std::numeric_limits<long long>::max())));
    }
    if (command == "run") {
        if (program.empty())
            return usage();
        return cmdRun(endpoint, program,
                      contexts == 0 ? 1 : contexts,
                      sweepRequest.scale);
    }
    if (command == "compare") {
        if (local)
            return cmdCompareLocal(sweepRequest);
        return fleetNodes.empty()
                   ? cmdCompare(endpoint, sweepRequest)
                   : cmdCompareFleet(fleetNodes, sweepRequest);
    }
    if (command == "sweep") {
        if (local)
            return cmdSweepLocal(sweepRequest);
        return fleetNodes.empty()
                   ? cmdSweep(endpoint, sweepRequest,
                              /*quiet=*/false, follow)
                   : cmdSweepFleet(fleetNodes, sweepRequest,
                                   /*quiet=*/false, follow);
    }
    if (command == "warm") {
        return fleetNodes.empty()
                   ? cmdSweep(endpoint, sweepRequest, /*quiet=*/true,
                              /*follow=*/false)
                   : cmdSweepFleet(fleetNodes, sweepRequest,
                                   /*quiet=*/true, /*follow=*/false);
    }
    return usage();
}
