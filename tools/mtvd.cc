/**
 * @file
 * mtvd — the experiment daemon: an ExperimentEngine behind a unix
 * socket (and optionally a TCP endpoint), optionally warm-started
 * from (and writing through to) a persistent on-disk result store,
 * shared by any number of mtvctl / protocol clients.
 *
 * Usage:
 *   mtvd [--socket PATH] [--tcp HOST:PORT] [--store DIR] [--shards N]
 *        [--workers N] [--cache-cap N]
 *        [--kernel stepped|event|batched] [--batch-width N] [--quiet]
 *   mtvd --route EP1,EP2,... [--socket PATH] [--tcp HOST:PORT]
 *        [--quiet]
 *
 * --tcp adds a TCP listener next to the unix socket (same protocol;
 * the fleet transport). --tcp-ephemeral HOST binds a kernel-chosen
 * port instead — tests and the fleet smoke script read it back from
 * the startup line. --kernel selects the simulation kernel (all
 * three are bit-identical; batched additionally coalesces queued
 * family-mates into lockstep runs, --batch-width points at a time).
 * --route turns this mtvd into a thin fleet router over the listed
 * node endpoints ("HOST:PORT" or socket paths): it owns no engine,
 * so the engine flags (--store, --shards, --workers, --cache-cap,
 * --kernel, --batch-width) are rejected in route mode.
 *
 * Defaults: socket $MTV_SOCKET or /tmp/mtvd.sock; no store (results
 * die with the daemon — pass --store to persist; --shards sets the
 * hash-partition count of a *fresh* store, existing stores keep
 * theirs); one worker per hardware thread; unbounded memory cache.
 * Runs in the foreground (use your service manager or `&` to
 * daemonize); SIGINT/SIGTERM shut it down cleanly.
 */

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>

#include "src/common/logging.hh"
#include "src/common/strutil.hh"
#include "src/fleet/fleet_service.hh"
#include "src/service/server.hh"

namespace
{

mtv::MtvService *gService = nullptr;
mtv::FleetService *gFleetService = nullptr;

void
onSignal(int)
{
    if (gService)
        gService->stop();
    if (gFleetService)
        gFleetService->stop();
}

int
usage()
{
    std::fprintf(stderr,
                 "usage: mtvd [--socket PATH] [--tcp HOST:PORT] "
                 "[--store DIR] [--shards N] [--workers N] "
                 "[--cache-cap N] [--kernel stepped|event|batched] "
                 "[--batch-width N] [--quiet]\n"
                 "       mtvd --route EP1,EP2,... [--socket PATH] "
                 "[--tcp HOST:PORT] [--quiet]\n");
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace mtv;

    // Daemon log lines carry monotonic timestamps so multi-process
    // logs (fleet nodes + router) correlate by time; startup-line
    // greps stay substring-based, so the prefix is transparent.
    setLogTimestamps(true);

    ServiceOptions options;
    std::vector<std::string> routeNodes;
    bool engineFlagSeen = false;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> const char * {
            if (i + 1 >= argc)
                fatal("missing value for %s", arg.c_str());
            return argv[++i];
        };
        // Numeric flags parse strictly: "--workers abc" or a negative
        // "--cache-cap" must fatal(), not atoi/atoll-wrap into 0 (a
        // silent hardware-concurrency fallback) or SIZE_MAX (an
        // operator who thinks the cache is bounded gets an unbounded
        // one). --tcp parses HOST:PORT the same way — "host:abc"
        // dies loudly instead of listening on a surprise port.
        if (arg == "--socket") {
            options.socketPath = value();
        } else if (arg == "--tcp") {
            const HostPort hp = parseHostPort(value(), "--tcp");
            options.tcpHost = hp.host;
            options.tcpPort = hp.port;
        } else if (arg == "--tcp-ephemeral") {
            // Bind port 0 (kernel-chosen); tests and the fleet smoke
            // script read the port back from the startup line.
            options.tcpHost = value();
            options.tcpPort = 0;
        } else if (arg == "--route") {
            for (const std::string &node : split(value(), ',')) {
                if (!node.empty())
                    routeNodes.push_back(node);
            }
            if (routeNodes.empty())
                fatal("--route expects a comma-separated node list");
        } else if (arg == "--store") {
            options.storeDir = value();
            engineFlagSeen = true;
        } else if (arg == "--shards") {
            options.storeShards = static_cast<int>(
                parseIntFlag(value(), "--shards", 0, 1024));
            engineFlagSeen = true;
        } else if (arg == "--workers") {
            options.workers = static_cast<int>(
                parseIntFlag(value(), "--workers", 0, 4096));
            engineFlagSeen = true;
        } else if (arg == "--cache-cap") {
            options.maxCacheEntries = static_cast<size_t>(
                parseIntFlag(value(), "--cache-cap", 0,
                             std::numeric_limits<long long>::max()));
            engineFlagSeen = true;
        } else if (arg == "--kernel") {
            const std::string name = value();
            if (name == "stepped")
                options.kernel = SimKernel::Stepped;
            else if (name == "event")
                options.kernel = SimKernel::Event;
            else if (name == "batched")
                options.kernel = SimKernel::Batched;
            else
                fatal("--kernel wants stepped|event|batched, got "
                      "'%s'", name.c_str());
            engineFlagSeen = true;
        } else if (arg == "--batch-width") {
            options.batchWidth = static_cast<int>(
                parseIntFlag(value(), "--batch-width", 1, 4096));
            engineFlagSeen = true;
        } else if (arg == "--quiet") {
            setLogLevel(LogLevel::Quiet);
        } else if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else {
            std::fprintf(stderr, "mtvd: unknown argument '%s'\n",
                         arg.c_str());
            return usage();
        }
    }

    if (!routeNodes.empty()) {
        if (engineFlagSeen) {
            fatal("--route owns no engine: --store/--shards/"
                  "--workers/--cache-cap/--kernel/--batch-width do "
                  "not apply (set them on the nodes)");
        }
        FleetServiceOptions fleetOptions;
        fleetOptions.socketPath = options.socketPath;
        fleetOptions.tcpHost = options.tcpHost;
        fleetOptions.tcpPort = options.tcpPort;
        fleetOptions.nodes = routeNodes;
        FleetService service(fleetOptions);
        gFleetService = &service;
        std::signal(SIGINT, onSignal);
        std::signal(SIGTERM, onSignal);
        std::signal(SIGPIPE, SIG_IGN);
        service.serve();
        inform("mtvd: stopped");
        gFleetService = nullptr;
        return 0;
    }

    MtvService service(options);
    gService = &service;
    std::signal(SIGINT, onSignal);
    std::signal(SIGTERM, onSignal);
    std::signal(SIGPIPE, SIG_IGN);

    if (service.store()) {
        const ResultStore::Stats s = service.store()->stats();
        inform("mtvd: store '%s' warm with %llu results "
               "(%zu shards, %zu segments, %zu stale, %llu dropped, "
               "%llu migrated)",
               service.store()->directory().c_str(),
               static_cast<unsigned long long>(
                   service.store()->size()),
               s.shards, s.segments, s.staleSegments,
               static_cast<unsigned long long>(s.droppedRecords),
               static_cast<unsigned long long>(s.migratedRecords));
    }

    service.serve();
    inform("mtvd: stopped");
    gService = nullptr;
    return 0;
}
