#!/usr/bin/env bash
# Service smoke test: the ISSUE-4 acceptance scenario, end to end.
#
#   1. start mtvd with a fresh sharded store and SIGKILL it MID-SWEEP
#      (no graceful close, appends in flight across the shards);
#   2. restart on the same store: every shard recovers its intact
#      records (crash tails dropped), and a full sweep — sent as ONE
#      ~100-byte server-side-expanded request — completes, reusing
#      whatever the killed run persisted;
#   3. SIGKILL the idle daemon, restart, sweep again: now >= 95% of
#      the points must be store-served and the digest bit-identical
#      to the pre-kill run;
#   4. SIGKILL a *client* mid-sweep (ISSUE-5): the daemon must reap
#      the abandoned batch (visible in `mtvctl status` counters),
#      stay responsive, and a subsequent sweep must still be
#      digest-identical;
#   5. assert a cold in-process run (mtvctl sweep --local, no daemon)
#      produces the same digest.
#
# Usage: tools/service_smoke.sh <build-dir> [scale]
set -euo pipefail

BUILD_DIR=${1:?usage: service_smoke.sh <build-dir> [scale]}
SCALE=${2:-1e-5}
WORK=$(mktemp -d /tmp/mtv_smoke.XXXXXX)
SOCKET="$WORK/mtvd.sock"
STORE="$WORK/store"
DAEMON_PID=""

cleanup() {
    [ -n "$DAEMON_PID" ] && kill -9 "$DAEMON_PID" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT

start_daemon() {
    "$BUILD_DIR/mtvd" --socket "$SOCKET" --store "$STORE" \
        >> "$WORK/daemon.log" 2>&1 &
    DAEMON_PID=$!
    for _ in $(seq 1 50); do
        if "$BUILD_DIR/mtvctl" --socket "$SOCKET" ping \
            > /dev/null 2>&1; then
            return
        fi
        sleep 0.1
    done
    echo "FAIL: daemon did not come up"; cat "$WORK/daemon.log"
    exit 1
}

sweep() {
    "$BUILD_DIR/mtvctl" --socket "$SOCKET" sweep --scale "$SCALE"
}

field() {  # field <name> <<< "served: simulated=N cache=N store=N"
    grep -o "$1=[0-9]*" | cut -d= -f2
}

echo "== start a sweep on a fresh store, SIGKILL the daemon mid-flight =="
start_daemon
sweep > "$WORK/killed_sweep.out" 2>&1 &
SWEEP_PID=$!
sleep 0.4
kill -9 "$DAEMON_PID"
wait "$DAEMON_PID" 2>/dev/null || true
DAEMON_PID=""
# The client loses its daemon mid-stream; any exit is acceptable.
wait "$SWEEP_PID" 2>/dev/null || true
PARTIAL=$(ls "$STORE"/shard-*/seg-*.mtvs 2>/dev/null | wc -l)
echo "killed mid-sweep; $PARTIAL shard segments left behind"

echo "== restart on the killed store, run the full sweep =="
start_daemon
COLD_OUT=$(sweep)
COLD_DIGEST=$(echo "$COLD_OUT" | grep '^digest:' | awk '{print $2}')
COLD_SIM=$(echo "$COLD_OUT" | grep '^served:' | field simulated)
COLD_STORE=$(echo "$COLD_OUT" | grep '^served:' | field store)
echo "recovered run: simulated=$COLD_SIM store=$COLD_STORE digest=$COLD_DIGEST"

echo "== SIGKILL the idle daemon, restart, sweep must be store-served =="
kill -9 "$DAEMON_PID"
wait "$DAEMON_PID" 2>/dev/null || true
DAEMON_PID=""
start_daemon
grep -q 'shards' "$WORK/daemon.log" \
    || { echo "FAIL: daemon did not report a sharded store"; exit 1; }

WARM_OUT=$(sweep)
WARM_DIGEST=$(echo "$WARM_OUT" | grep '^digest:' | awk '{print $2}')
SERVED=$(echo "$WARM_OUT" | grep '^served:')
WARM_STORE=$(echo "$SERVED" | field store)
WARM_TOTAL=$(echo "$WARM_OUT" | grep '^sweep:' | grep -o '[0-9]* points' | awk '{print $1}')
echo "warm: $SERVED (of $WARM_TOTAL points) digest=$WARM_DIGEST"

# >= 95% of the points must come from the persistent store.
THRESHOLD=$(( WARM_TOTAL * 95 / 100 ))
if [ "$WARM_STORE" -lt "$THRESHOLD" ]; then
    echo "FAIL: only $WARM_STORE/$WARM_TOTAL points store-served (need >= $THRESHOLD)"
    exit 1
fi

# Bit-identical across both SIGKILL restarts.
if [ "$WARM_DIGEST" != "$COLD_DIGEST" ]; then
    echo "FAIL: warm digest $WARM_DIGEST != cold digest $COLD_DIGEST"
    exit 1
fi

echo "== SIGKILL a CLIENT mid-sweep: daemon must reap and stay up =="
# A heavier, uncached scale so the killed client leaves real queued
# work behind (the $SCALE points are all store-served by now).
KILL_SCALE=3e-4
"$BUILD_DIR/mtvctl" --socket "$SOCKET" sweep --scale "$KILL_SCALE" \
    > "$WORK/killed_client.out" 2>&1 &
CLIENT_PID=$!
sleep 1
kill -9 "$CLIENT_PID" 2>/dev/null || true
wait "$CLIENT_PID" 2>/dev/null || true

# The daemon must answer status immediately and, once the reap
# settles, report the abandoned batch and its freed points.
REAPED=0; FREED=0
for _ in $(seq 1 50); do
    STATUS=$("$BUILD_DIR/mtvctl" --socket "$SOCKET" status) \
        || { echo "FAIL: daemon unresponsive after client kill"; exit 1; }
    ACTIVE=$(echo "$STATUS" | grep '^active requests:' | awk '{print $3}')
    REAPED=$(echo "$STATUS" | grep -o 'reapedBatches=[0-9]*' | cut -d= -f2)
    CANCELLED=$(echo "$STATUS" | grep -o 'cancelledPoints=[0-9]*' | cut -d= -f2)
    DISCARDED=$(echo "$STATUS" | grep -o 'discardedPoints=[0-9]*' | cut -d= -f2)
    FREED=$(( CANCELLED + DISCARDED ))
    QUEUE=$(echo "$STATUS" | grep '^queue depth:' | awk '{print $3}')
    if [ "$ACTIVE" = 0 ] && [ "$QUEUE" = 0 ]; then
        break
    fi
    sleep 0.2
done
echo "after client kill: reapedBatches=$REAPED freedPoints=$FREED"
if [ "$REAPED" -lt 1 ] || [ "$FREED" -lt 1 ]; then
    echo "FAIL: daemon did not reap the killed client's work"
    "$BUILD_DIR/mtvctl" --socket "$SOCKET" status
    exit 1
fi

# And it still serves: the standard sweep stays digest-identical.
AFTER_OUT=$(sweep)
AFTER_DIGEST=$(echo "$AFTER_OUT" | grep '^digest:' | awk '{print $2}')
if [ "$AFTER_DIGEST" != "$COLD_DIGEST" ]; then
    echo "FAIL: post-kill digest $AFTER_DIGEST != cold digest $COLD_DIGEST"
    exit 1
fi
echo "daemon responsive after client kill, digest still $AFTER_DIGEST"

echo "== cold in-process run (no daemon) =="
LOCAL_DIGEST=$("$BUILD_DIR/mtvctl" sweep --local --scale "$SCALE" \
    | grep '^digest:' | awk '{print $2}')
echo "local: digest=$LOCAL_DIGEST"
if [ "$LOCAL_DIGEST" != "$COLD_DIGEST" ]; then
    echo "FAIL: local digest $LOCAL_DIGEST != daemon digest $COLD_DIGEST"
    exit 1
fi

"$BUILD_DIR/mtvctl" --socket "$SOCKET" stats
"$BUILD_DIR/mtvctl" --socket "$SOCKET" shutdown > /dev/null
wait "$DAEMON_PID" 2>/dev/null || true
DAEMON_PID=""

echo "PASS: mid-sweep SIGKILL recovered; $WARM_STORE/$WARM_TOTAL store-served; client kill reaped ($REAPED batch, $FREED points freed); digests bit-identical (daemon == restart == --local)"
