#!/usr/bin/env bash
# Loadgen smoke test: interactive latency stays bounded under load —
# the ISSUE-7 acceptance scenario.
#
#   1. start one mtvd (batched kernel) on a unix socket;
#   2. mtvloadgen drives 200 closed-loop clients of single-point
#      interactive runs WHILE a quiet 10k-point background sweep
#      streams on its own connection (the weighted-lane scheduling
#      scenario);
#   3. fail when the p99 interactive latency exceeds the committed
#      bound, any request errored, the background sweep streamed
#      nothing, the daemon's own metrics report write failures /
#      rerouted points, or the batched engine never actually
#      coalesced the sweep (engine_batched_points_total must exceed
#      engine_batches_total).
#
# On failure the daemon log is copied to <build-dir>/loadgen-logs so
# CI can upload it as an artifact.
#
# Usage: tools/loadgen_smoke.sh <build-dir> [p99-bound-ms]
set -euo pipefail

BUILD_DIR=${1:?usage: loadgen_smoke.sh <build-dir> [p99-bound-ms]}
# The committed latency bound: generous against CI-runner noise, but
# low enough that a head-of-line-blocked interactive lane (seconds
# behind a 10k-point sweep) still fails loudly.
P99_BOUND_MS=${2:-2000}
WORK=$(mktemp -d /tmp/mtv_loadgen_smoke.XXXXXX)
DAEMON_PID=""

cleanup() {
    local status=$?
    [ -n "$DAEMON_PID" ] && kill -9 "$DAEMON_PID" 2>/dev/null || true
    if [ "$status" -ne 0 ]; then
        mkdir -p "$BUILD_DIR/loadgen-logs"
        cp "$WORK"/*.log "$BUILD_DIR/loadgen-logs/" 2>/dev/null || true
        echo "FAIL: logs copied to $BUILD_DIR/loadgen-logs"
    fi
    rm -rf "$WORK"
}
trap cleanup EXIT

echo "== start one mtvd (batched kernel) =="
"$BUILD_DIR/mtvd" --socket "$WORK/mtvd.sock" --kernel batched \
    > "$WORK/mtvd.log" 2>&1 &
DAEMON_PID=$!
disown "$DAEMON_PID"
for _ in $(seq 1 50); do
    if "$BUILD_DIR/mtvctl" --socket "$WORK/mtvd.sock" ping \
        > /dev/null 2>&1; then
        break
    fi
    sleep 0.1
done
"$BUILD_DIR/mtvctl" --socket "$WORK/mtvd.sock" ping > /dev/null \
    || { echo "FAIL: daemon did not come up"; exit 1; }

echo "== 200 clients + 10k-point background sweep =="
OUT=$("$BUILD_DIR/mtvloadgen" --socket "$WORK/mtvd.sock" \
    --clients 200 --requests 10 --sweep-points 10000 --json)
echo "$OUT"

P99_MS=$(echo "$OUT" | grep -oE '"p99Ms":[0-9.]+' | cut -d: -f2)
ERRORS=$(echo "$OUT" | grep -oE '"errors":[0-9]+' | cut -d: -f2)
COMPLETED=$(echo "$OUT" | grep -oE '"completed":[0-9]+' | cut -d: -f2)
SWEEP_POINTS=$(echo "$OUT" | grep -oE '"sweepPoints":[0-9]+' | cut -d: -f2)

[ -n "$P99_MS" ] && [ -n "$ERRORS" ] && [ -n "$COMPLETED" ] \
    || { echo "FAIL: loadgen JSON misses fields"; exit 1; }
[ "$ERRORS" -eq 0 ] \
    || { echo "FAIL: $ERRORS interactive requests errored"; exit 1; }
[ "$COMPLETED" -eq 2000 ] \
    || { echo "FAIL: only $COMPLETED of 2000 requests completed"; exit 1; }
[ "$SWEEP_POINTS" -gt 0 ] \
    || { echo "FAIL: the background sweep streamed no points — the \
load test measured an idle daemon"; exit 1; }
awk -v p="$P99_MS" -v bound="$P99_BOUND_MS" \
    'BEGIN { exit !(p <= bound) }' \
    || { echo "FAIL: p99 interactive latency ${P99_MS}ms exceeds \
the ${P99_BOUND_MS}ms bound"; exit 1; }
echo "p99 ${P99_MS}ms <= ${P99_BOUND_MS}ms with $SWEEP_POINTS sweep \
points streaming in the background"

echo "== asserted daemon metrics =="
METRICS=$("$BUILD_DIR/mtvctl" --socket "$WORK/mtvd.sock" metrics)
echo "$METRICS" | grep -q '"service_write_failures_total":0' \
    || { echo "FAIL: daemon reported write failures"; exit 1; }
# A plain daemon never reroutes; any nonzero fleet_reroutes_total
# means fleet machinery leaked into the single-node path.
if echo "$METRICS" | grep -qE '"fleet_reroutes_total":[1-9]'; then
    echo "FAIL: single-node daemon reported rerouted points"
    exit 1
fi
PROM=$("$BUILD_DIR/mtvctl" --socket "$WORK/mtvd.sock" metrics --prom)
echo "$PROM" | grep -q '^service_first_point_us_bucket' \
    || { echo "FAIL: prom exposition misses latency buckets"; exit 1; }
# The batched kernel must have coalesced the sweep: strictly more
# points than batches means at least one lockstep run carried >1
# family-mates (an uncoalesced engine would report points == batches).
BATCHES=$(echo "$METRICS" | grep -oE '"engine_batches_total":[0-9]+' \
    | cut -d: -f2)
BATCHED_POINTS=$(echo "$METRICS" \
    | grep -oE '"engine_batched_points_total":[0-9]+' | cut -d: -f2)
[ -n "$BATCHES" ] && [ "$BATCHES" -ge 1 ] \
    || { echo "FAIL: engine_batches_total missing or zero"; exit 1; }
[ -n "$BATCHED_POINTS" ] && [ "$BATCHED_POINTS" -gt "$BATCHES" ] \
    || { echo "FAIL: engine_batched_points_total ($BATCHED_POINTS) \
not above engine_batches_total ($BATCHES) — the sweep never \
coalesced"; exit 1; }
echo "batching: $BATCHED_POINTS points across $BATCHES lockstep runs"

"$BUILD_DIR/mtvctl" --socket "$WORK/mtvd.sock" shutdown > /dev/null
echo "PASS: p99 ${P99_MS}ms under 200-client load with a background \
sweep; no errors, no write failures"
