#!/usr/bin/env bash
# Fleet smoke test: the ISSUE-6 acceptance scenario, end to end.
#
#   1. start 3 mtvd nodes on ephemeral loopback TCP ports (the ports
#      are read back from each node's startup line);
#   2. `mtvctl --fleet` scatters a sweep across them; its folded
#      digest must be bit-identical to `mtvctl sweep --local`;
#   3. a routing daemon (`mtvd --route`) in front of the same nodes
#      serves a plain `mtvctl sweep` with the same digest, answers
#      ping with fleet info and status with the membership table;
#   4. SIGKILL one node MID-SWEEP: the fleet sweep must complete with
#      exit 0 and no client-visible error, report rerouted points and
#      the dead node on its `fleet:` line, and its digest must STILL
#      match --local.
#
# On failure the per-node logs are copied to <build-dir>/fleet-logs
# so CI can upload them as artifacts.
#
# Usage: tools/fleet_smoke.sh <build-dir> [kill-scale]
set -euo pipefail

BUILD_DIR=${1:?usage: fleet_smoke.sh <build-dir> [kill-scale]}
# The mid-kill sweep must run long enough (~3s) for the kill to land
# mid-stream; the plain digest checks use a faster scale.
KILL_SCALE=${2:-1e-4}
QUICK_SCALE=1e-5
WORK=$(mktemp -d /tmp/mtv_fleet_smoke.XXXXXX)
NODE_PIDS=()
ROUTER_PID=""

cleanup() {
    local status=$?
    for pid in "${NODE_PIDS[@]}"; do
        kill -9 "$pid" 2>/dev/null || true
    done
    [ -n "$ROUTER_PID" ] && kill -9 "$ROUTER_PID" 2>/dev/null || true
    if [ "$status" -ne 0 ]; then
        mkdir -p "$BUILD_DIR/fleet-logs"
        cp "$WORK"/*.log "$BUILD_DIR/fleet-logs/" 2>/dev/null || true
        echo "FAIL: logs copied to $BUILD_DIR/fleet-logs"
    fi
    rm -rf "$WORK"
}
trap cleanup EXIT

# Start node $1 on an ephemeral TCP port; sets NODE_EP to host:port.
start_node() {
    local n=$1
    "$BUILD_DIR/mtvd" --socket "$WORK/node$n.sock" \
        --tcp-ephemeral 127.0.0.1 \
        > "$WORK/node$n.log" 2>&1 &
    NODE_PIDS[$n]=$!
    disown "${NODE_PIDS[$n]}"  # no job-control noise on kill -9
    NODE_EP=""
    for _ in $(seq 1 50); do
        NODE_EP=$(grep -oE 'listening on 127\.0\.0\.1:[0-9]+' \
            "$WORK/node$n.log" 2>/dev/null \
            | head -1 | sed 's/listening on //') || true
        if [ -n "$NODE_EP" ] && "$BUILD_DIR/mtvctl" --tcp "$NODE_EP" \
            ping > /dev/null 2>&1; then
            return
        fi
        sleep 0.1
    done
    echo "FAIL: node $n did not come up"
    cat "$WORK/node$n.log"
    exit 1
}

digest_of() {  # digest_of <sweep output>
    echo "$1" | grep '^digest:' | awk '{print $2}'
}

echo "== start a 3-node fleet on ephemeral TCP ports =="
start_node 0; EP0=$NODE_EP
start_node 1; EP1=$NODE_EP
start_node 2; EP2=$NODE_EP
FLEET="$EP0,$EP1,$EP2"
echo "fleet: $FLEET"

echo "== fleet sweep must fold the --local digest =="
LOCAL_OUT=$("$BUILD_DIR/mtvctl" sweep --local --scale "$QUICK_SCALE")
LOCAL_DIGEST=$(digest_of "$LOCAL_OUT")
FLEET_OUT=$("$BUILD_DIR/mtvctl" --fleet "$FLEET" sweep \
    --scale "$QUICK_SCALE")
FLEET_DIGEST=$(digest_of "$FLEET_OUT")
echo "$FLEET_OUT" | grep '^fleet:'
if [ "$FLEET_DIGEST" != "$LOCAL_DIGEST" ]; then
    echo "FAIL: fleet digest $FLEET_DIGEST != local $LOCAL_DIGEST"
    exit 1
fi
echo "$FLEET_OUT" | grep -q 'rerouted=0' \
    || { echo "FAIL: healthy fleet rerouted points"; exit 1; }
echo "fleet digest $FLEET_DIGEST == --local"

echo "== a routing daemon serves the same digest to a plain client =="
"$BUILD_DIR/mtvd" --route "$FLEET" --socket "$WORK/router.sock" \
    > "$WORK/router.log" 2>&1 &
ROUTER_PID=$!
disown "$ROUTER_PID"
for _ in $(seq 1 50); do
    if "$BUILD_DIR/mtvctl" --socket "$WORK/router.sock" ping \
        > /dev/null 2>&1; then
        break
    fi
    sleep 0.1
done
"$BUILD_DIR/mtvctl" --socket "$WORK/router.sock" ping \
    || { echo "FAIL: router did not come up"; exit 1; }
"$BUILD_DIR/mtvctl" --socket "$WORK/router.sock" status \
    | grep -q "^node $EP0:" \
    || { echo "FAIL: router status misses node $EP0"; exit 1; }
ROUTED_OUT=$("$BUILD_DIR/mtvctl" --socket "$WORK/router.sock" sweep \
    --scale "$QUICK_SCALE")
ROUTED_DIGEST=$(digest_of "$ROUTED_OUT")
if [ "$ROUTED_DIGEST" != "$LOCAL_DIGEST" ]; then
    echo "FAIL: routed digest $ROUTED_DIGEST != local $LOCAL_DIGEST"
    exit 1
fi
echo "routed digest $ROUTED_DIGEST == --local"

echo "== router metrics op aggregates per-node counters =="
METRICS_OUT=$("$BUILD_DIR/mtvctl" --socket "$WORK/router.sock" metrics)
echo "$METRICS_OUT" | grep -q '"fleet":true' \
    || { echo "FAIL: router metrics response is not fleet-shaped"; \
         exit 1; }
# All three nodes must have answered with their registries: the
# response carries a top-level ok plus one per reachable node.
NODE_OKS=$(echo "$METRICS_OUT" | grep -o '"ok":true' | wc -l)
[ "$NODE_OKS" -ge 4 ] \
    || { echo "FAIL: not every node answered the metrics gather"; \
         echo "$METRICS_OUT"; exit 1; }
# The summed completed-points counter must cover the routed sweep
# that just ran (totals come last in the response, hence tail -1).
TOTAL_POINTS=$(echo "$METRICS_OUT" \
    | grep -oE '"engine_points_completed_total":[0-9]+' \
    | tail -1 | cut -d: -f2)
[ -n "$TOTAL_POINTS" ] && [ "$TOTAL_POINTS" -ge 250 ] \
    || { echo "FAIL: fleet totals miss the sweep's points \
(got '$TOTAL_POINTS')"; exit 1; }
# The same aggregation client-side, without the routing daemon.
FLEETMETRICS_OUT=$("$BUILD_DIR/mtvctl" --fleet "$FLEET" metrics)
echo "$FLEETMETRICS_OUT" | grep -q '"totals"' \
    || { echo "FAIL: --fleet metrics carries no totals"; exit 1; }
# And one node's Prometheus exposition, scraped directly.
PROM_OUT=$("$BUILD_DIR/mtvctl" --tcp "$EP0" metrics --prom)
echo "$PROM_OUT" \
    | grep -q '^# TYPE engine_points_completed_total counter' \
    || { echo "FAIL: node prom exposition misses engine counters"; \
         exit 1; }
echo "fleet metrics: 3 nodes gathered, totals cover \
$TOTAL_POINTS completed points"

kill -9 "$ROUTER_PID" 2>/dev/null || true
ROUTER_PID=""

echo "== SIGKILL node 1 mid-sweep: the fleet must finish anyway =="
"$BUILD_DIR/mtvctl" --fleet "$FLEET" sweep --scale "$KILL_SCALE" \
    > "$WORK/killed_sweep.out" 2>&1 &
SWEEP_PID=$!
sleep 1.5
kill -9 "${NODE_PIDS[1]}"
if ! wait "$SWEEP_PID"; then
    echo "FAIL: fleet sweep died with a node kill mid-flight"
    cat "$WORK/killed_sweep.out"
    exit 1
fi
KILLED_OUT=$(cat "$WORK/killed_sweep.out")
echo "$KILLED_OUT" | grep '^fleet:'
echo "$KILLED_OUT" | grep '^fleet:' | grep -q 'alive=2' \
    || { echo "FAIL: dead node not reflected in alive count"; exit 1; }
echo "$KILLED_OUT" | grep '^fleet:' | grep -qE 'rerouted=[1-9]' \
    || { echo "FAIL: no points rerouted — kill missed the sweep \
(raise kill-scale?)"; cat "$WORK/killed_sweep.out"; exit 1; }
echo "$KILLED_OUT" | grep '^fleet:' | grep -q "dead=$EP1" \
    || { echo "FAIL: fleet line does not name the killed node"; \
         exit 1; }

KILLED_DIGEST=$(digest_of "$KILLED_OUT")
LOCAL_KILL_DIGEST=$(digest_of \
    "$("$BUILD_DIR/mtvctl" sweep --local --scale "$KILL_SCALE")")
if [ "$KILLED_DIGEST" != "$LOCAL_KILL_DIGEST" ]; then
    echo "FAIL: post-kill digest $KILLED_DIGEST != local $LOCAL_KILL_DIGEST"
    exit 1
fi

REROUTED=$(echo "$KILLED_OUT" | grep '^fleet:' \
    | grep -oE 'rerouted=[0-9]+' | cut -d= -f2)
echo "PASS: 3-node fleet digest == routed == --local; node kill \
mid-sweep rerouted $REROUTED points and stayed bit-identical \
($KILLED_DIGEST)"
