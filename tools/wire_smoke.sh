#!/usr/bin/env bash
# Wire-compat smoke test: the protocol-v6 cross-wire contract, end
# to end, against one daemon.
#
#   1. a v5-style JSON client (--wire json: never sends hello) and a
#      v6 binary client (--wire binary: negotiates frames) run the
#      same sweep and must fold bit-identical digests;
#   2. so must a cold in-process run (sweep --local, no daemon) —
#      the digest contract is wire-independent;
#   3. the binary client must actually have negotiated frames (its
#      `wire:` readout reports the format the daemon confirmed), so
#      the check cannot silently degrade to JSON-vs-JSON;
#   4. quiet warms and re-sweeps cross wires: points persisted by a
#      JSON client are store-served to a binary client unchanged.
#
# Usage: tools/wire_smoke.sh <build-dir> [scale]
set -euo pipefail

BUILD_DIR=${1:?usage: wire_smoke.sh <build-dir> [scale]}
SCALE=${2:-1e-5}
WORK=$(mktemp -d /tmp/mtv_wire_smoke.XXXXXX)
SOCKET="$WORK/mtvd.sock"
STORE="$WORK/store"
DAEMON_PID=""

cleanup() {
    [ -n "$DAEMON_PID" ] && kill -9 "$DAEMON_PID" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT

"$BUILD_DIR/mtvd" --socket "$SOCKET" --store "$STORE" \
    >> "$WORK/daemon.log" 2>&1 &
DAEMON_PID=$!
for _ in $(seq 1 50); do
    if "$BUILD_DIR/mtvctl" --socket "$SOCKET" ping \
        > /dev/null 2>&1; then
        break
    fi
    sleep 0.1
done

digest_of() { echo "$1" | grep '^digest:' | awk '{print $2}'; }

echo "== the same sweep over both wires must fold one digest =="
JSON_OUT=$("$BUILD_DIR/mtvctl" --socket "$SOCKET" --wire json \
    sweep --family latency --scale "$SCALE")
BIN_OUT=$("$BUILD_DIR/mtvctl" --socket "$SOCKET" --wire binary \
    sweep --family latency --scale "$SCALE")
JSON_DIGEST=$(digest_of "$JSON_OUT")
BIN_DIGEST=$(digest_of "$BIN_OUT")
echo "json digest:   $JSON_DIGEST"
echo "binary digest: $BIN_DIGEST"
[ -n "$JSON_DIGEST" ] || { echo "FAIL: no json digest"; exit 1; }
if [ "$JSON_DIGEST" != "$BIN_DIGEST" ]; then
    echo "FAIL: binary wire digest differs from json"; exit 1
fi

# The binary run must really have streamed frames — a daemon that
# refused the hello would fall back to JSON and hide a regression.
echo "$BIN_OUT" | grep '^wire:' | grep -q 'binary' \
    || { echo "FAIL: binary client did not negotiate frames"; \
         echo "$BIN_OUT" | grep '^wire:'; exit 1; }
echo "$JSON_OUT" | grep '^wire:' | grep -q 'json' \
    || { echo "FAIL: json client reports a non-json wire"; exit 1; }

echo "== a daemonless --local run folds the same digest =="
LOCAL_OUT=$("$BUILD_DIR/mtvctl" \
    sweep --family latency --scale "$SCALE" --local)
LOCAL_DIGEST=$(digest_of "$LOCAL_OUT")
[ "$LOCAL_DIGEST" = "$JSON_DIGEST" ] \
    || { echo "FAIL: --local digest $LOCAL_DIGEST != $JSON_DIGEST"; \
         exit 1; }
echo "local digest:  $LOCAL_DIGEST"

echo "== store written via one wire serves the other =="
WARM_OUT=$("$BUILD_DIR/mtvctl" --socket "$SOCKET" --wire binary \
    sweep --family latency --scale "$SCALE")
WARM_DIGEST=$(digest_of "$WARM_OUT")
[ "$WARM_DIGEST" = "$JSON_DIGEST" ] \
    || { echo "FAIL: warm binary digest differs"; exit 1; }
SERVED=$(echo "$WARM_OUT" | grep '^served:')
echo "warm binary: $SERVED digest=$WARM_DIGEST"
echo "$SERVED" | grep -qE 'simulated=0( |$)' \
    || { echo "FAIL: warm cross-wire sweep re-simulated points"; \
         exit 1; }

echo "PASS: wire smoke"
