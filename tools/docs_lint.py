#!/usr/bin/env python3
"""Markdown lint for the repo docs: every relative link must resolve.

Checks, stdlib only (runs in CI without network access):

  * relative links/images point at files that exist in the repo
  * intra-document anchors (``#section``) match a heading in the
    target file, using GitHub's slug rules (lowercase, spaces to
    dashes, punctuation dropped)
  * fenced code blocks are balanced (an unclosed fence swallows the
    rest of the document on GitHub)
  * no literal merge-conflict markers survive

External http(s)/mailto links are deliberately NOT fetched; CI must
not depend on the network. Usage:

    python3 tools/docs_lint.py [FILE.md ...]

With no arguments, lints every tracked *.md file under the repo root.
Exits nonzero with one line per problem.
"""

import os
import re
import subprocess
import sys

LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
HEADING = re.compile(r"^#{1,6}\s+(.*)$")
FENCE = re.compile(r"^(```|~~~)")
CONFLICT = re.compile(r"^(<{7} |={7}$|>{7} )")


def repo_root():
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--show-toplevel"],
            capture_output=True, text=True, check=True)
        return out.stdout.strip()
    except (subprocess.CalledProcessError, FileNotFoundError):
        return os.getcwd()


def tracked_markdown(root):
    try:
        out = subprocess.run(
            ["git", "ls-files", "--cached", "--others",
             "--exclude-standard", "*.md", "**/*.md"],
            capture_output=True, text=True, check=True, cwd=root)
        files = [f for f in out.stdout.splitlines() if f]
    except (subprocess.CalledProcessError, FileNotFoundError):
        files = []
        for dirpath, dirnames, filenames in os.walk(root):
            dirnames[:] = [d for d in dirnames
                           if d not in (".git", "build")]
            for name in filenames:
                if name.endswith(".md"):
                    files.append(os.path.relpath(
                        os.path.join(dirpath, name), root))
    return sorted(set(files))


def github_slug(heading):
    """GitHub's anchor slug: strip punctuation, spaces become dashes."""
    text = re.sub(r"`([^`]*)`", r"\1", heading.strip())
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)  # linked headings
    text = text.lower()
    text = re.sub(r"[^\w\- ]", "", text, flags=re.UNICODE)
    return text.replace(" ", "-")


def parse_document(path):
    """Return (links, anchors, problems) for one markdown file."""
    links = []      # (lineno, target)
    anchors = set()
    problems = []
    in_fence = False
    fence_open_line = 0
    with open(path, encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, 1):
            if CONFLICT.match(line):
                problems.append((lineno, "merge-conflict marker"))
            if FENCE.match(line):
                in_fence = not in_fence
                fence_open_line = lineno if in_fence else 0
                continue
            if in_fence:
                continue
            m = HEADING.match(line)
            if m:
                anchors.add(github_slug(m.group(1)))
            for m in LINK.finditer(line):
                links.append((lineno, m.group(1)))
    if in_fence:
        problems.append((fence_open_line, "unclosed code fence"))
    return links, anchors, problems


def main(argv):
    root = repo_root()
    files = argv[1:] or tracked_markdown(root)
    docs = {}
    errors = []
    for rel in files:
        path = os.path.join(root, rel)
        if not os.path.isfile(path):
            errors.append(f"{rel}: file not found")
            continue
        docs[os.path.normpath(rel)] = parse_document(path)

    for rel, (links, anchors, problems) in sorted(docs.items()):
        for lineno, what in problems:
            errors.append(f"{rel}:{lineno}: {what}")
        base = os.path.dirname(rel)
        for lineno, target in links:
            if re.match(r"^[a-z][a-z0-9+.-]*:", target):
                continue  # http(s)/mailto: not checked offline
            target, _, fragment = target.partition("#")
            if target:
                dest = os.path.normpath(os.path.join(base, target))
                if not os.path.exists(os.path.join(root, dest)):
                    errors.append(
                        f"{rel}:{lineno}: broken link -> {target}")
                    continue
            else:
                dest = rel
            if fragment:
                # Anchors are only checkable in files this run parsed.
                if dest in docs and fragment not in docs[dest][1]:
                    errors.append(
                        f"{rel}:{lineno}: missing anchor "
                        f"#{fragment} in {dest}")

    for error in errors:
        print(error, file=sys.stderr)
    if errors:
        print(f"docs_lint: {len(errors)} problem(s)", file=sys.stderr)
        return 1
    print(f"docs_lint: {len(docs)} file(s) clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
