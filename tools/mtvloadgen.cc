/**
 * @file
 * mtvloadgen — closed-loop load generator for the mtvd daemon.
 *
 * Drives N concurrent client connections, each issuing single-point
 * interactive "run" requests back-to-back (closed loop) or paced to
 * a target aggregate request rate (--rps), optionally while a big
 * quiet background sweep streams on its own connection — the
 * interactive-latency-under-load scenario the engine's weighted
 * lane scheduling exists for. Prints a latency report (exact
 * percentiles over every measured request) and, with --json, one
 * machine-readable line the CI loadgen-smoke job parses.
 *
 * Usage:
 *   mtvloadgen [--socket PATH | --tcp HOST:PORT]
 *              [--clients N] [--requests N] [--rps R] [--scale S]
 *              [--spec-space M] [--sweep-points N]
 *              [--wire binary|json] [--stream-bench N] [--json]
 *
 * Defaults: 8 clients x 50 requests, unpaced, scale 2e-5, 32
 * distinct specs per client, no background sweep. Each client draws
 * its specs from its own memory-latency band, so the flows exercise
 * simulation, the memory cache and (when the daemon has one) the
 * store rather than one endlessly-cached point.
 *
 * --wire picks the v6 result-point encoding (binary negotiates the
 * frame wire, falling back to JSON on old daemons); the report then
 * carries the received byte count and MB/s.
 *
 * --stream-bench N replaces the closed-loop run with a streaming
 * throughput measurement: warm an N-point sweep once (quiet), then
 * stream it non-quiet twice — once per wire format — and report
 * points/s for each. With --json the output is bench-shaped
 * ({"benchmarks":[{"name":"stream_binary","sim_cycles/s":p},...]}),
 * so tools/perf_gate.py --min-ratio can ratchet binary >= k x JSON
 * in CI.
 *
 * Exit status: 0 on success, 1 when any request failed or nothing
 * completed (the smoke job treats that as a hard failure).
 */

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/api/run_spec.hh"
#include "src/api/sweep.hh"
#include "src/common/logging.hh"
#include "src/common/strutil.hh"
#include "src/obs/metrics.hh"
#include "src/service/protocol.hh"
#include "src/workload/suite.hh"

namespace
{

using namespace mtv;

int
usage()
{
    std::fprintf(
        stderr,
        "usage: mtvloadgen [--socket PATH | --tcp HOST:PORT]\n"
        "                  [--clients N] [--requests N] [--rps R]\n"
        "                  [--scale S] [--spec-space M]\n"
        "                  [--sweep-points N] [--wire binary|json]\n"
        "                  [--stream-bench N] [--json]\n");
    return 2;
}

/** Result-point wire the clients ask for (--wire). */
WireFormat requestedWire = WireFormat::Binary;

/** Send the v6 hello on a fresh connection when binary was
 *  requested; false = the stream stays JSON (explicit --wire json,
 *  or an old daemon answered "unknown op"). */
bool
negotiateWire(LineChannel &channel, bool binary)
{
    if (!binary)
        return false;
    Json hello = Json::object();
    hello.set("op", "hello");
    hello.set("wire", "binary");
    std::string line;
    if (!channel.writeLine(hello.dump()) ||
        !channel.readLine(&line)) {
        return false;
    }
    Json response;
    std::string parseError;
    if (!Json::parse(line, &response, &parseError))
        return false;
    return response.getBool("ok", false) &&
           response.getString("wire", "") == "binary";
}

/** One client thread's tally, merged after the run. */
struct ClientTally
{
    std::vector<uint64_t> latenciesUs;  ///< request -> done, per request
    uint64_t errors = 0;
    uint64_t bytesRead = 0;  ///< wire bytes received on the connection
};

/**
 * Run one closed-loop client: @p requests single-point runs on its
 * own connection, request->done latency measured around each. A
 * non-zero @p intervalUs paces the loop (open-loop-ish): the next
 * request fires on schedule even when the previous one was slow,
 * without ever pipelining more than one request per connection.
 */
ClientTally
runClient(const Endpoint &endpoint, int index, int requests,
          int specSpace, double scale, uint64_t intervalUs)
{
    ClientTally tally;
    std::string error;
    const int fd = connectToEndpoint(endpoint, &error);
    if (fd < 0) {
        warn("client %d: connect failed: %s", index, error.c_str());
        tally.errors = static_cast<uint64_t>(requests);
        return tally;
    }
    LineChannel channel(fd);
    negotiateWire(channel, requestedWire == WireFormat::Binary);
    tally.latenciesUs.reserve(requests);

    const uint64_t startUs = monotonicMicros();
    for (int i = 0; i < requests; ++i) {
        if (intervalUs > 0) {
            const uint64_t slotUs = startUs + i * intervalUs;
            const uint64_t nowUs = monotonicMicros();
            if (nowUs < slotUs) {
                std::this_thread::sleep_for(
                    std::chrono::microseconds(slotUs - nowUs));
            }
        }
        // Each client owns a disjoint memory-latency band, cycling
        // through specSpace distinct points: the first lap simulates,
        // later laps hit the cache/store — mixed traffic, like real
        // interactive use.
        MachineParams params = MachineParams::reference();
        params.memLatency = 1000 + index * specSpace + i % specSpace;
        const RunSpec spec = RunSpec::single(
            i % 2 ? "swm256" : "trfd", params, scale);

        Json request = Json::object();
        request.set("op", "run");
        request.set("id", static_cast<uint64_t>(i + 1));
        request.set("quiet", true);
        Json specs = Json::array();
        specs.push(spec.canonical());
        request.set("specs", std::move(specs));

        const uint64_t sentUs = monotonicMicros();
        if (!channel.writeLine(request.dump())) {
            tally.errors += requests - i;
            break;
        }
        bool done = false;
        bool failed = false;
        std::string line;
        while (!done) {
            const LineChannel::MessageKind kind =
                channel.readMessage(&line);
            if (kind == LineChannel::MessageKind::Eof ||
                kind == LineChannel::MessageKind::BadFrame) {
                failed = true;
                break;
            }
            if (kind == LineChannel::MessageKind::Frame) {
                // A binary result point; "done" is a JSON line in
                // either wire mode, so just keep reading.
                continue;
            }
            Json response;
            std::string parseError;
            if (!Json::parse(line, &response, &parseError)) {
                warn("client %d: malformed response: %s", index,
                     parseError.c_str());
                failed = true;
                break;
            }
            if (response.has("error")) {
                warn("client %d: daemon error: %s", index,
                     response.getString("error").c_str());
                failed = true;
                break;
            }
            done = response.getBool("done", false);
        }
        if (failed) {
            ++tally.errors;
            break;  // the connection is suspect; stop this client
        }
        tally.latenciesUs.push_back(monotonicMicros() - sentUs);
    }
    tally.bytesRead = channel.bytesRead();
    return tally;
}

/** Tally of the background sweep consumer thread. */
struct SweepTally
{
    uint64_t pointsStreamed = 0;
    bool requestFailed = false;
    bool sawTerminator = false;
};

/** The N-point latency-family sweep the stream bench measures (the
 *  family expands one job-queue run per latency, so one synthetic
 *  latency per requested point). */
SweepRequest
benchSweep(int points, double scale)
{
    SweepRequest sweep;
    sweep.family = "latency";
    sweep.scale = scale;
    // Stream points carrying a loaded queue — the section-7 order
    // three times over — so every result hauls a realistically full
    // set of job records. The bench measures result *streaming*, and
    // a near-empty payload would mostly measure per-point fixed
    // overhead that both wires share.
    for (int rep = 0; rep < 3; ++rep)
        for (const auto &job : jobQueueOrder())
            sweep.jobs.push_back(job);
    for (int lat = 1; lat <= points; ++lat)
        sweep.latencies.push_back(200000 + lat);
    return sweep;
}

/** One measured pass of the stream bench. */
struct StreamPass
{
    bool ok = false;
    bool binary = false;  ///< what the connection actually negotiated
    uint64_t points = 0;
    uint64_t bytes = 0;
    double seconds = 0;
};

/**
 * Stream @p sweep once on a fresh connection negotiated to the
 * requested wire, timing ack -> done. Non-quiet unless @p quiet, so
 * the measured passes carry the full per-point stats payload — the
 * thing the two wire formats encode differently.
 */
StreamPass
streamOnce(const Endpoint &endpoint, const SweepRequest &sweep,
           bool binary, bool quiet)
{
    StreamPass pass;
    std::string error;
    const int fd = connectToEndpoint(endpoint, &error);
    if (fd < 0) {
        warn("stream bench: connect failed: %s", error.c_str());
        return pass;
    }
    LineChannel channel(fd);
    pass.binary = negotiateWire(channel, binary);
    if (binary && !pass.binary) {
        warn("stream bench: daemon refused the binary wire");
        return pass;
    }
    Json request = sweepRequestToJson(sweep);
    request.set("op", "sweep");
    request.set("id", static_cast<uint64_t>(1));
    request.set("quiet", quiet);
    if (!channel.writeLine(request.dump())) {
        warn("stream bench: cannot send sweep (daemon gone?)");
        return pass;
    }
    const uint64_t startUs = monotonicMicros();
    std::string message;
    for (;;) {
        const LineChannel::MessageKind kind =
            channel.readMessage(&message);
        if (kind == LineChannel::MessageKind::Eof ||
            kind == LineChannel::MessageKind::BadFrame) {
            warn("stream bench: stream broke after %llu points",
                 static_cast<unsigned long long>(pass.points));
            return pass;
        }
        if (kind == LineChannel::MessageKind::Frame) {
            ++pass.points;
            continue;
        }
        Json response;
        std::string parseError;
        if (!Json::parse(message, &response, &parseError)) {
            warn("stream bench: malformed response: %s",
                 parseError.c_str());
            return pass;
        }
        if (response.has("error")) {
            warn("stream bench: daemon error: %s",
                 response.getString("error").c_str());
            return pass;
        }
        if (response.getBool("ack", false))
            continue;
        if (response.getBool("done", false)) {
            if (response.getBool("cancelled", false))
                return pass;
            break;
        }
        ++pass.points;
    }
    pass.seconds =
        static_cast<double>(monotonicMicros() - startUs) / 1e6;
    pass.bytes = channel.bytesRead();
    pass.ok = pass.points > 0;
    return pass;
}

/**
 * The --stream-bench mode: warm the sweep once (quiet, JSON — the
 * results land in cache/store so the measured passes stream finished
 * points and the wire is the only variable), then stream it
 * non-quiet once per wire format and report points/s for each.
 */
int
runStreamBench(const Endpoint &endpoint, int points, double scale,
               bool json)
{
    const SweepRequest sweep = benchSweep(points, scale);
    const StreamPass warm =
        streamOnce(endpoint, sweep, /*binary=*/false, /*quiet=*/true);
    if (!warm.ok)
        return 1;
    // Best of three alternating passes per wire: every point is a
    // warm cache hit, so pass time is pure streaming cost and the
    // fastest pass is the least scheduler-perturbed sample.
    constexpr int benchPasses = 3;
    StreamPass jsonPass{};
    StreamPass binaryPass{};
    for (int pass = 0; pass < benchPasses; ++pass) {
        const StreamPass j = streamOnce(
            endpoint, sweep, /*binary=*/false, /*quiet=*/false);
        if (!j.ok)
            return 1;
        if (!jsonPass.ok || j.seconds < jsonPass.seconds)
            jsonPass = j;
        const StreamPass b = streamOnce(
            endpoint, sweep, /*binary=*/true, /*quiet=*/false);
        if (!b.ok || !b.binary)
            return 1;
        if (!binaryPass.ok || b.seconds < binaryPass.seconds)
            binaryPass = b;
    }
    const double jsonRate = static_cast<double>(jsonPass.points) /
                            std::max(jsonPass.seconds, 1e-9);
    const double binaryRate =
        static_cast<double>(binaryPass.points) /
        std::max(binaryPass.seconds, 1e-9);
    if (json) {
        // Bench-shaped on purpose: perf_gate.py --min-ratio reads
        // benchmarks[].{name, sim_cycles/s} (here points/s — the
        // gate only ever compares the two rates to each other).
        Json out = Json::object();
        Json benches = Json::array();
        const struct
        {
            const char *name;
            double rate;
        } rows[] = {{"stream_binary", binaryRate},
                    {"stream_json", jsonRate}};
        for (const auto &row : rows) {
            Json bench = Json::object();
            bench.set("name", std::string(row.name));
            bench.set("sim_cycles/s", row.rate);
            benches.push(std::move(bench));
        }
        out.set("benchmarks", std::move(benches));
        std::printf("%s\n", out.dump().c_str());
    } else {
        std::printf("stream bench: %llu warmed points on %s\n",
                    static_cast<unsigned long long>(warm.points),
                    endpoint.describe().c_str());
        std::printf("json:   %.0f points/s (%llu bytes, %.1f MB/s)\n",
                    jsonRate,
                    static_cast<unsigned long long>(jsonPass.bytes),
                    static_cast<double>(jsonPass.bytes) /
                        std::max(jsonPass.seconds, 1e-9) / 1e6);
        std::printf("binary: %.0f points/s (%llu bytes, %.1f MB/s), "
                    "%.2fx json\n",
                    binaryRate,
                    static_cast<unsigned long long>(binaryPass.bytes),
                    static_cast<double>(binaryPass.bytes) /
                        std::max(binaryPass.seconds, 1e-9) / 1e6,
                    binaryRate / std::max(jsonRate, 1e-9));
    }
    return 0;
}

/** Exact q-quantile of a sorted sample (nearest-rank). */
uint64_t
percentileUs(const std::vector<uint64_t> &sorted, double q)
{
    if (sorted.empty())
        return 0;
    const double rank =
        std::ceil(q * static_cast<double>(sorted.size()));
    const size_t index = rank < 1.0
        ? 0
        : std::min(sorted.size() - 1,
                   static_cast<size_t>(rank) - 1);
    return sorted[index];
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace mtv;

    Endpoint endpoint = Endpoint::unixSocket(defaultSocketPath());
    int clients = 8;
    int requests = 50;
    double rps = 0;
    double scale = 2e-5;
    int specSpace = 32;
    int sweepPoints = 0;
    int streamBench = 0;
    bool json = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> const char * {
            if (i + 1 >= argc)
                fatal("missing value for %s", arg.c_str());
            return argv[++i];
        };
        if (arg == "--socket") {
            endpoint = Endpoint::unixSocket(value());
        } else if (arg == "--tcp") {
            const HostPort hp = parseHostPort(value(), "--tcp");
            endpoint = Endpoint::tcp(hp.host, hp.port);
        } else if (arg == "--clients") {
            clients = static_cast<int>(
                parseIntFlag(value(), "--clients", 1, 10000));
        } else if (arg == "--requests") {
            requests = static_cast<int>(
                parseIntFlag(value(), "--requests", 1, 1000000));
        } else if (arg == "--rps") {
            rps = parsePositiveFlag(value(), "--rps");
        } else if (arg == "--scale") {
            scale = parsePositiveFlag(value(), "--scale");
        } else if (arg == "--spec-space") {
            specSpace = static_cast<int>(
                parseIntFlag(value(), "--spec-space", 1, 1000000));
        } else if (arg == "--sweep-points") {
            sweepPoints = static_cast<int>(
                parseIntFlag(value(), "--sweep-points", 0, 10000000));
        } else if (arg == "--wire") {
            const std::string wanted = value();
            if (wanted == "json")
                requestedWire = WireFormat::Json;
            else if (wanted == "binary")
                requestedWire = WireFormat::Binary;
            else
                fatal("--wire expects json or binary, got '%s'",
                      wanted.c_str());
        } else if (arg == "--stream-bench") {
            streamBench = static_cast<int>(
                parseIntFlag(value(), "--stream-bench", 1, 10000000));
        } else if (arg == "--json") {
            json = true;
        } else if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else {
            std::fprintf(stderr,
                         "mtvloadgen: unknown argument '%s'\n",
                         arg.c_str());
            return usage();
        }
    }

    if (streamBench > 0)
        return runStreamBench(endpoint, streamBench, scale, json);

    // -------- background sweep (its own connection + thread) --------
    constexpr uint64_t sweepId = 900000001;
    SweepTally sweepTally;
    std::thread sweepThread;
    std::unique_ptr<LineChannel> sweepChannel;
    if (sweepPoints > 0) {
        std::string error;
        const int fd = connectToEndpoint(endpoint, &error);
        if (fd < 0)
            fatal("sweep connection failed: %s", error.c_str());
        sweepChannel = std::make_unique<LineChannel>(fd);

        // The latency family expands jobs x latencies points; one
        // synthetic latency per needed batch of jobs gives at least
        // the requested point count.
        SweepRequest sweep;
        sweep.family = "latency";
        sweep.scale = scale;
        const size_t jobs = jobQueueOrder().size();
        const int bands = static_cast<int>(
            (static_cast<size_t>(sweepPoints) + jobs - 1) / jobs);
        for (int lat = 1; lat <= bands; ++lat)
            sweep.latencies.push_back(100000 + lat);
        Json request = sweepRequestToJson(sweep);
        request.set("op", "sweep");
        request.set("id", sweepId);
        request.set("quiet", true);
        if (!sweepChannel->writeLine(request.dump()))
            fatal("cannot send sweep request (daemon gone?)");

        sweepThread = std::thread([&sweepTally, &sweepChannel] {
            std::string line;
            while (sweepChannel->readLine(&line)) {
                Json response;
                std::string parseError;
                if (!Json::parse(line, &response, &parseError)) {
                    sweepTally.requestFailed = true;
                    return;
                }
                if (response.has("error")) {
                    warn("sweep: daemon error: %s",
                         response.getString("error").c_str());
                    sweepTally.requestFailed = true;
                    return;
                }
                if (response.getBool("ack", false))
                    continue;
                if (response.getBool("done", false)) {
                    // Completed or cancelled: both are clean ends
                    // for a background-load sweep.
                    sweepTally.sawTerminator = true;
                    return;
                }
                ++sweepTally.pointsStreamed;
            }
            sweepTally.requestFailed = true;
        });
    }

    // -------- interactive clients --------
    const uint64_t intervalUs = rps > 0
        ? static_cast<uint64_t>(1e6 * clients / rps)
        : 0;
    const uint64_t startUs = monotonicMicros();
    std::vector<ClientTally> tallies(clients);
    {
        std::vector<std::thread> threads;
        threads.reserve(clients);
        for (int c = 0; c < clients; ++c) {
            threads.emplace_back([&, c] {
                tallies[c] = runClient(endpoint, c, requests,
                                       specSpace, scale, intervalUs);
            });
        }
        for (std::thread &thread : threads)
            thread.join();
    }
    const double durationS =
        static_cast<double>(monotonicMicros() - startUs) / 1e6;

    // -------- stop the background sweep --------
    if (sweepPoints > 0) {
        // Cancel by request id from a control connection; the sweep
        // stream then terminates with a cancelled done line (or it
        // already finished and the cancel hits nothing).
        std::string error;
        const int fd = connectToEndpoint(endpoint, &error);
        if (fd >= 0) {
            LineChannel control(fd);
            Json cancel = Json::object();
            cancel.set("op", "cancel");
            cancel.set("id", sweepId);
            std::string line;
            if (control.writeLine(cancel.dump()))
                control.readLine(&line);
        }
        sweepThread.join();
        sweepChannel.reset();
        if (sweepTally.requestFailed)
            warn("background sweep failed mid-stream");
    }

    // -------- the report --------
    std::vector<uint64_t> merged;
    uint64_t errors = 0;
    uint64_t bytesRead = 0;
    for (const ClientTally &tally : tallies) {
        merged.insert(merged.end(), tally.latenciesUs.begin(),
                      tally.latenciesUs.end());
        errors += tally.errors;
        bytesRead += tally.bytesRead;
    }
    std::sort(merged.begin(), merged.end());
    const uint64_t completed = merged.size();
    uint64_t sumUs = 0;
    for (const uint64_t us : merged)
        sumUs += us;
    const double meanMs = completed
        ? static_cast<double>(sumUs) / completed / 1e3
        : 0.0;
    const double throughput =
        durationS > 0 ? completed / durationS : 0.0;
    const uint64_t p50 = percentileUs(merged, 0.50);
    const uint64_t p95 = percentileUs(merged, 0.95);
    const uint64_t p99 = percentileUs(merged, 0.99);

    if (json) {
        Json out = Json::object();
        out.set("clients", static_cast<uint64_t>(clients));
        out.set("requestsPerClient",
                static_cast<uint64_t>(requests));
        out.set("completed", completed);
        out.set("errors", errors);
        out.set("durationS", durationS);
        out.set("throughputRps", throughput);
        out.set("meanMs", meanMs);
        out.set("p50Ms", static_cast<double>(p50) / 1e3);
        out.set("p95Ms", static_cast<double>(p95) / 1e3);
        out.set("p99Ms", static_cast<double>(p99) / 1e3);
        out.set("minMs", completed
                             ? static_cast<double>(merged.front()) / 1e3
                             : 0.0);
        out.set("maxMs", completed
                             ? static_cast<double>(merged.back()) / 1e3
                             : 0.0);
        out.set("wire", std::string(requestedWire == WireFormat::Binary
                                        ? "binary"
                                        : "json"));
        out.set("bytesRead", bytesRead);
        out.set("mbPerS", durationS > 0
                              ? static_cast<double>(bytesRead) /
                                    durationS / 1e6
                              : 0.0);
        out.set("sweepPoints", sweepTally.pointsStreamed);
        out.set("sweepFailed", sweepTally.requestFailed);
        std::printf("%s\n", out.dump().c_str());
    } else {
        std::printf("loadgen: %d clients x %d requests against %s\n",
                    clients, requests,
                    endpoint.describe().c_str());
        std::printf(
            "completed: %llu requests in %.2fs (%.1f req/s), "
            "%llu errors\n",
            static_cast<unsigned long long>(completed), durationS,
            throughput, static_cast<unsigned long long>(errors));
        std::printf("latency: mean=%.2fms p50=%.2fms p95=%.2fms "
                    "p99=%.2fms max=%.2fms\n",
                    meanMs, static_cast<double>(p50) / 1e3,
                    static_cast<double>(p95) / 1e3,
                    static_cast<double>(p99) / 1e3,
                    completed
                        ? static_cast<double>(merged.back()) / 1e3
                        : 0.0);
        std::printf("wire: %s received=%llu bytes (%.1f MB/s)\n",
                    requestedWire == WireFormat::Binary ? "binary"
                                                        : "json",
                    static_cast<unsigned long long>(bytesRead),
                    durationS > 0 ? static_cast<double>(bytesRead) /
                                        durationS / 1e6
                                  : 0.0);
        if (sweepPoints > 0) {
            std::printf("background sweep: %llu points streamed "
                        "while measuring%s\n",
                        static_cast<unsigned long long>(
                            sweepTally.pointsStreamed),
                        sweepTally.requestFailed ? " (FAILED)" : "");
        }
    }

    if (errors > 0 || completed == 0 || sweepTally.requestFailed)
        return 1;
    return 0;
}
