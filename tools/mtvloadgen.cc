/**
 * @file
 * mtvloadgen — closed-loop load generator for the mtvd daemon.
 *
 * Drives N concurrent client connections, each issuing single-point
 * interactive "run" requests back-to-back (closed loop) or paced to
 * a target aggregate request rate (--rps), optionally while a big
 * quiet background sweep streams on its own connection — the
 * interactive-latency-under-load scenario the engine's weighted
 * lane scheduling exists for. Prints a latency report (exact
 * percentiles over every measured request) and, with --json, one
 * machine-readable line the CI loadgen-smoke job parses.
 *
 * Usage:
 *   mtvloadgen [--socket PATH | --tcp HOST:PORT]
 *              [--clients N] [--requests N] [--rps R] [--scale S]
 *              [--spec-space M] [--sweep-points N] [--json]
 *
 * Defaults: 8 clients x 50 requests, unpaced, scale 2e-5, 32
 * distinct specs per client, no background sweep. Each client draws
 * its specs from its own memory-latency band, so the flows exercise
 * simulation, the memory cache and (when the daemon has one) the
 * store rather than one endlessly-cached point.
 *
 * Exit status: 0 on success, 1 when any request failed or nothing
 * completed (the smoke job treats that as a hard failure).
 */

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/api/run_spec.hh"
#include "src/api/sweep.hh"
#include "src/common/logging.hh"
#include "src/common/strutil.hh"
#include "src/obs/metrics.hh"
#include "src/service/protocol.hh"
#include "src/workload/suite.hh"

namespace
{

using namespace mtv;

int
usage()
{
    std::fprintf(
        stderr,
        "usage: mtvloadgen [--socket PATH | --tcp HOST:PORT]\n"
        "                  [--clients N] [--requests N] [--rps R]\n"
        "                  [--scale S] [--spec-space M]\n"
        "                  [--sweep-points N] [--json]\n");
    return 2;
}

/** One client thread's tally, merged after the run. */
struct ClientTally
{
    std::vector<uint64_t> latenciesUs;  ///< request -> done, per request
    uint64_t errors = 0;
};

/**
 * Run one closed-loop client: @p requests single-point runs on its
 * own connection, request->done latency measured around each. A
 * non-zero @p intervalUs paces the loop (open-loop-ish): the next
 * request fires on schedule even when the previous one was slow,
 * without ever pipelining more than one request per connection.
 */
ClientTally
runClient(const Endpoint &endpoint, int index, int requests,
          int specSpace, double scale, uint64_t intervalUs)
{
    ClientTally tally;
    std::string error;
    const int fd = connectToEndpoint(endpoint, &error);
    if (fd < 0) {
        warn("client %d: connect failed: %s", index, error.c_str());
        tally.errors = static_cast<uint64_t>(requests);
        return tally;
    }
    LineChannel channel(fd);
    tally.latenciesUs.reserve(requests);

    const uint64_t startUs = monotonicMicros();
    for (int i = 0; i < requests; ++i) {
        if (intervalUs > 0) {
            const uint64_t slotUs = startUs + i * intervalUs;
            const uint64_t nowUs = monotonicMicros();
            if (nowUs < slotUs) {
                std::this_thread::sleep_for(
                    std::chrono::microseconds(slotUs - nowUs));
            }
        }
        // Each client owns a disjoint memory-latency band, cycling
        // through specSpace distinct points: the first lap simulates,
        // later laps hit the cache/store — mixed traffic, like real
        // interactive use.
        MachineParams params = MachineParams::reference();
        params.memLatency = 1000 + index * specSpace + i % specSpace;
        const RunSpec spec = RunSpec::single(
            i % 2 ? "swm256" : "trfd", params, scale);

        Json request = Json::object();
        request.set("op", "run");
        request.set("id", static_cast<uint64_t>(i + 1));
        request.set("quiet", true);
        Json specs = Json::array();
        specs.push(spec.canonical());
        request.set("specs", std::move(specs));

        const uint64_t sentUs = monotonicMicros();
        if (!channel.writeLine(request.dump())) {
            tally.errors += requests - i;
            break;
        }
        bool done = false;
        bool failed = false;
        std::string line;
        while (!done) {
            if (!channel.readLine(&line)) {
                failed = true;
                break;
            }
            Json response;
            std::string parseError;
            if (!Json::parse(line, &response, &parseError)) {
                warn("client %d: malformed response: %s", index,
                     parseError.c_str());
                failed = true;
                break;
            }
            if (response.has("error")) {
                warn("client %d: daemon error: %s", index,
                     response.getString("error").c_str());
                failed = true;
                break;
            }
            done = response.getBool("done", false);
        }
        if (failed) {
            ++tally.errors;
            break;  // the connection is suspect; stop this client
        }
        tally.latenciesUs.push_back(monotonicMicros() - sentUs);
    }
    return tally;
}

/** Tally of the background sweep consumer thread. */
struct SweepTally
{
    uint64_t pointsStreamed = 0;
    bool requestFailed = false;
    bool sawTerminator = false;
};

/** Exact q-quantile of a sorted sample (nearest-rank). */
uint64_t
percentileUs(const std::vector<uint64_t> &sorted, double q)
{
    if (sorted.empty())
        return 0;
    const double rank =
        std::ceil(q * static_cast<double>(sorted.size()));
    const size_t index = rank < 1.0
        ? 0
        : std::min(sorted.size() - 1,
                   static_cast<size_t>(rank) - 1);
    return sorted[index];
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace mtv;

    Endpoint endpoint = Endpoint::unixSocket(defaultSocketPath());
    int clients = 8;
    int requests = 50;
    double rps = 0;
    double scale = 2e-5;
    int specSpace = 32;
    int sweepPoints = 0;
    bool json = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> const char * {
            if (i + 1 >= argc)
                fatal("missing value for %s", arg.c_str());
            return argv[++i];
        };
        if (arg == "--socket") {
            endpoint = Endpoint::unixSocket(value());
        } else if (arg == "--tcp") {
            const HostPort hp = parseHostPort(value(), "--tcp");
            endpoint = Endpoint::tcp(hp.host, hp.port);
        } else if (arg == "--clients") {
            clients = static_cast<int>(
                parseIntFlag(value(), "--clients", 1, 10000));
        } else if (arg == "--requests") {
            requests = static_cast<int>(
                parseIntFlag(value(), "--requests", 1, 1000000));
        } else if (arg == "--rps") {
            rps = parsePositiveFlag(value(), "--rps");
        } else if (arg == "--scale") {
            scale = parsePositiveFlag(value(), "--scale");
        } else if (arg == "--spec-space") {
            specSpace = static_cast<int>(
                parseIntFlag(value(), "--spec-space", 1, 1000000));
        } else if (arg == "--sweep-points") {
            sweepPoints = static_cast<int>(
                parseIntFlag(value(), "--sweep-points", 0, 10000000));
        } else if (arg == "--json") {
            json = true;
        } else if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else {
            std::fprintf(stderr,
                         "mtvloadgen: unknown argument '%s'\n",
                         arg.c_str());
            return usage();
        }
    }

    // -------- background sweep (its own connection + thread) --------
    constexpr uint64_t sweepId = 900000001;
    SweepTally sweepTally;
    std::thread sweepThread;
    std::unique_ptr<LineChannel> sweepChannel;
    if (sweepPoints > 0) {
        std::string error;
        const int fd = connectToEndpoint(endpoint, &error);
        if (fd < 0)
            fatal("sweep connection failed: %s", error.c_str());
        sweepChannel = std::make_unique<LineChannel>(fd);

        // The latency family expands jobs x latencies points; one
        // synthetic latency per needed batch of jobs gives at least
        // the requested point count.
        SweepRequest sweep;
        sweep.family = "latency";
        sweep.scale = scale;
        const size_t jobs = jobQueueOrder().size();
        const int bands = static_cast<int>(
            (static_cast<size_t>(sweepPoints) + jobs - 1) / jobs);
        for (int lat = 1; lat <= bands; ++lat)
            sweep.latencies.push_back(100000 + lat);
        Json request = sweepRequestToJson(sweep);
        request.set("op", "sweep");
        request.set("id", sweepId);
        request.set("quiet", true);
        if (!sweepChannel->writeLine(request.dump()))
            fatal("cannot send sweep request (daemon gone?)");

        sweepThread = std::thread([&sweepTally, &sweepChannel] {
            std::string line;
            while (sweepChannel->readLine(&line)) {
                Json response;
                std::string parseError;
                if (!Json::parse(line, &response, &parseError)) {
                    sweepTally.requestFailed = true;
                    return;
                }
                if (response.has("error")) {
                    warn("sweep: daemon error: %s",
                         response.getString("error").c_str());
                    sweepTally.requestFailed = true;
                    return;
                }
                if (response.getBool("ack", false))
                    continue;
                if (response.getBool("done", false)) {
                    // Completed or cancelled: both are clean ends
                    // for a background-load sweep.
                    sweepTally.sawTerminator = true;
                    return;
                }
                ++sweepTally.pointsStreamed;
            }
            sweepTally.requestFailed = true;
        });
    }

    // -------- interactive clients --------
    const uint64_t intervalUs = rps > 0
        ? static_cast<uint64_t>(1e6 * clients / rps)
        : 0;
    const uint64_t startUs = monotonicMicros();
    std::vector<ClientTally> tallies(clients);
    {
        std::vector<std::thread> threads;
        threads.reserve(clients);
        for (int c = 0; c < clients; ++c) {
            threads.emplace_back([&, c] {
                tallies[c] = runClient(endpoint, c, requests,
                                       specSpace, scale, intervalUs);
            });
        }
        for (std::thread &thread : threads)
            thread.join();
    }
    const double durationS =
        static_cast<double>(monotonicMicros() - startUs) / 1e6;

    // -------- stop the background sweep --------
    if (sweepPoints > 0) {
        // Cancel by request id from a control connection; the sweep
        // stream then terminates with a cancelled done line (or it
        // already finished and the cancel hits nothing).
        std::string error;
        const int fd = connectToEndpoint(endpoint, &error);
        if (fd >= 0) {
            LineChannel control(fd);
            Json cancel = Json::object();
            cancel.set("op", "cancel");
            cancel.set("id", sweepId);
            std::string line;
            if (control.writeLine(cancel.dump()))
                control.readLine(&line);
        }
        sweepThread.join();
        sweepChannel.reset();
        if (sweepTally.requestFailed)
            warn("background sweep failed mid-stream");
    }

    // -------- the report --------
    std::vector<uint64_t> merged;
    uint64_t errors = 0;
    for (const ClientTally &tally : tallies) {
        merged.insert(merged.end(), tally.latenciesUs.begin(),
                      tally.latenciesUs.end());
        errors += tally.errors;
    }
    std::sort(merged.begin(), merged.end());
    const uint64_t completed = merged.size();
    uint64_t sumUs = 0;
    for (const uint64_t us : merged)
        sumUs += us;
    const double meanMs = completed
        ? static_cast<double>(sumUs) / completed / 1e3
        : 0.0;
    const double throughput =
        durationS > 0 ? completed / durationS : 0.0;
    const uint64_t p50 = percentileUs(merged, 0.50);
    const uint64_t p95 = percentileUs(merged, 0.95);
    const uint64_t p99 = percentileUs(merged, 0.99);

    if (json) {
        Json out = Json::object();
        out.set("clients", static_cast<uint64_t>(clients));
        out.set("requestsPerClient",
                static_cast<uint64_t>(requests));
        out.set("completed", completed);
        out.set("errors", errors);
        out.set("durationS", durationS);
        out.set("throughputRps", throughput);
        out.set("meanMs", meanMs);
        out.set("p50Ms", static_cast<double>(p50) / 1e3);
        out.set("p95Ms", static_cast<double>(p95) / 1e3);
        out.set("p99Ms", static_cast<double>(p99) / 1e3);
        out.set("minMs", completed
                             ? static_cast<double>(merged.front()) / 1e3
                             : 0.0);
        out.set("maxMs", completed
                             ? static_cast<double>(merged.back()) / 1e3
                             : 0.0);
        out.set("sweepPoints", sweepTally.pointsStreamed);
        out.set("sweepFailed", sweepTally.requestFailed);
        std::printf("%s\n", out.dump().c_str());
    } else {
        std::printf("loadgen: %d clients x %d requests against %s\n",
                    clients, requests,
                    endpoint.describe().c_str());
        std::printf(
            "completed: %llu requests in %.2fs (%.1f req/s), "
            "%llu errors\n",
            static_cast<unsigned long long>(completed), durationS,
            throughput, static_cast<unsigned long long>(errors));
        std::printf("latency: mean=%.2fms p50=%.2fms p95=%.2fms "
                    "p99=%.2fms max=%.2fms\n",
                    meanMs, static_cast<double>(p50) / 1e3,
                    static_cast<double>(p95) / 1e3,
                    static_cast<double>(p99) / 1e3,
                    completed
                        ? static_cast<double>(merged.back()) / 1e3
                        : 0.0);
        if (sweepPoints > 0) {
            std::printf("background sweep: %llu points streamed "
                        "while measuring%s\n",
                        static_cast<unsigned long long>(
                            sweepTally.pointsStreamed),
                        sweepTally.requestFailed ? " (FAILED)" : "");
        }
    }

    if (errors > 0 || completed == 0 || sweepTally.requestFailed)
        return 1;
    return 0;
}
