/**
 * @file
 * Extension (paper section 10): vector register renaming. Renaming
 * removes WAW/WAR dispatch stalls — the hazards that force the
 * generator's 8-register bodies to serialize — and the paper lists it
 * as the next step after multithreading. This bench measures its
 * value on the 1-port machine and on the 3-port Cray machine, alone
 * and combined with multithreading.
 */

#include <algorithm>

#include "bench/bench_util.hh"
#include "src/common/strutil.hh"
#include "src/common/table.hh"
#include "src/workload/suite.hh"

int
main()
{
    using namespace mtv;
    const double scale = benchScale();
    benchBanner("Extension - vector register renaming",
                "paper section 10 future work", scale);

    const auto &jobs = jobQueueOrder();

    struct Machine
    {
        std::string label;
        MachineParams params;
    };
    std::vector<Machine> machines;
    for (const bool cray : {false, true}) {
        for (const int c : {1, 2, 4}) {
            MachineParams p = cray ? MachineParams::crayStyle(c)
                                   : MachineParams::multithreaded(c);
            if (cray)
                p.decodeWidth = std::min(2, c);
            machines.push_back(
                {format("%s-%dctx", cray ? "cray" : "convex", c), p});
        }
    }
    SweepBuilder sweep(scale);
    for (const auto &m : machines) {
        MachineParams r = m.params;
        r.renaming = true;
        sweep.addJobQueue(jobs, m.params).addJobQueue(jobs, r);
    }

    ExperimentEngine engine = benchEngine();
    const std::vector<RunResult> results = engine.runAll(sweep.specs());

    Table t({"machine", "no renaming (k)", "renaming (k)", "speedup",
             "occ w/o", "occ w/"});
    for (size_t i = 0; i < machines.size(); ++i) {
        const SimStats &off = results[2 * i].stats;
        const SimStats &on = results[2 * i + 1].stats;
        t.row()
            .add(machines[i].label)
            .add(static_cast<double>(off.cycles) / 1e3, 1)
            .add(static_cast<double>(on.cycles) / 1e3, 1)
            .add(static_cast<double>(off.cycles) / on.cycles, 3)
            .add(off.memPortOccupation(), 3)
            .add(on.memPortOccupation(), 3);
    }
    t.print();
    std::printf("\nreading: renaming and multithreading both mine the "
                "same idle port cycles, so their gains overlap on the "
                "1-port machine; the extra bandwidth of the 3-port "
                "machine gives renaming more room.\n");
    return 0;
}
