/**
 * @file
 * Extension (paper section 10): vector register renaming. Renaming
 * removes WAW/WAR dispatch stalls — the hazards that force the
 * generator's 8-register bodies to serialize — and the paper lists it
 * as the next step after multithreading. This bench measures its
 * value on the 1-port machine and on the 3-port Cray machine, alone
 * and combined with multithreading.
 *
 * Thin adapter over the registered "ext-renaming" sweep family: the
 * machine grid lives in expandSweep() (src/api/sweep.cc), shared with
 * the daemon and `mtvctl sweep --family ext-renaming`. The family
 * carries three design-parallel slices — no renaming, the infinite
 * physical pool, and the bounded 4-register pool of the RunSpec
 * renameDepth axis — so this table gains a bounded column over the
 * original two. `mtvctl compare --family ext-renaming` renders the
 * same data as a speedup-vs-baseline table.
 */

#include "bench/bench_util.hh"
#include "src/common/strutil.hh"
#include "src/common/table.hh"

int
main()
{
    using namespace mtv;
    const double scale = benchScale();
    benchBanner("Extension - vector register renaming",
                "paper section 10 future work", scale);

    SweepRequest request;
    request.family = "ext-renaming";
    request.scale = scale;
    SweepBuilder sweep = expandSweep(request);

    ExperimentEngine engine = benchEngine();
    const std::vector<RunResult> results = engine.runAll(sweep.specs());

    // Slices: [0] baseline, [1] infinite renaming, [2] bounded pool
    // of 4 — row i of each slice is the same machine.
    const SweepSlice &off = sweep.slices().at(0);
    const SweepSlice &inf = sweep.slices().at(1);
    const SweepSlice &bounded = sweep.slices().at(2);

    Table t({"machine", "no renaming (k)", "renaming (k)",
             "rename4 (k)", "speedup", "occ w/o", "occ w/"});
    for (size_t i = 0; i < off.count; ++i) {
        const SimStats &base = results[off.first + i].stats;
        const SimStats &ren = results[inf.first + i].stats;
        const SimStats &r4 = results[bounded.first + i].stats;
        const MachineParams p =
            results[off.first + i].spec.effectiveParams();
        t.row()
            .add(format("%s-%dctx",
                        p.storePorts > 0 ? "cray" : "convex",
                        p.contexts))
            .add(static_cast<double>(base.cycles) / 1e3, 1)
            .add(static_cast<double>(ren.cycles) / 1e3, 1)
            .add(static_cast<double>(r4.cycles) / 1e3, 1)
            .add(static_cast<double>(base.cycles) / ren.cycles, 3)
            .add(base.memPortOccupation(), 3)
            .add(ren.memPortOccupation(), 3);
    }
    t.print();
    std::printf("\nreading: renaming and multithreading both mine the "
                "same idle port cycles, so their gains overlap on the "
                "1-port machine; the extra bandwidth of the 3-port "
                "machine gives renaming more room. A bounded pool of "
                "4 spare registers (the renameDepth axis) matches the "
                "infinite pool on these workloads.\n");
    return 0;
}
