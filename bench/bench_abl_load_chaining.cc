/**
 * @file
 * Ablation: memory-load chaining. The modelled Convex C34 (like the
 * Cray-2/3) does not chain loads into functional units; consumers
 * wait for the whole load. This bench adds that chaining and shows it
 * buys the baseline much of what multithreading buys — and that the
 * two mechanisms overlap (multithreading already hides load latency).
 */

#include "bench/bench_util.hh"
#include "src/common/strutil.hh"
#include "src/common/table.hh"
#include "src/workload/suite.hh"

int
main()
{
    using namespace mtv;
    const double scale = benchScale();
    benchBanner("Ablation - load->FU chaining",
                "paper section 3 design choice (no load chaining)",
                scale);

    const auto &jobs = jobQueueOrder();
    auto machineOf = [](int c, bool chain) {
        MachineParams p = MachineParams::multithreaded(c);
        p.loadChaining = chain;
        return p;
    };

    const std::vector<int> mthContexts = {2, 3, 4};
    SweepBuilder sweep(scale);
    for (const int c : mthContexts)
        for (const bool chain : {false, true})
            sweep.addJobQueue(jobs, machineOf(c, chain));

    ExperimentEngine engine = benchEngine();
    const std::vector<RunResult> results = engine.runAll(sweep.specs());

    Table t({"machine", "no chain (k)", "with chain (k)",
             "gain from chaining"});
    auto addRow = [&t](const std::string &name, double off,
                       double on) {
        t.row()
            .add(name)
            .add(off / 1e3, 1)
            .add(on / 1e3, 1)
            .add(off / on, 3);
    };
    addRow("baseline",
           static_cast<double>(engine.sequentialReferenceCycles(
               jobs, machineOf(1, false), scale)),
           static_cast<double>(engine.sequentialReferenceCycles(
               jobs, machineOf(1, true), scale)));
    size_t next = 0;
    for (const int c : mthContexts) {
        const double off =
            static_cast<double>(results[next++].stats.cycles);
        const double on =
            static_cast<double>(results[next++].stats.cycles);
        addRow(format("mth%d", c), off, on);
    }
    t.print();
    std::printf("\nexpectation: chaining helps the baseline most; "
                "with 3-4 threads the memory port is already near "
                "saturation and the gain shrinks.\n");
    return 0;
}
