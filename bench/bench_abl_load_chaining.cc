/**
 * @file
 * Ablation: memory-load chaining. The modelled Convex C34 (like the
 * Cray-2/3) does not chain loads into functional units; consumers
 * wait for the whole load. This bench adds that chaining and shows it
 * buys the baseline much of what multithreading buys — and that the
 * two mechanisms overlap (multithreading already hides load latency).
 */

#include "bench/bench_util.hh"
#include "src/common/strutil.hh"
#include "src/common/table.hh"
#include "src/driver/experiments.hh"

int
main()
{
    using namespace mtv;
    const double scale = benchScale();
    benchBanner("Ablation - load->FU chaining",
                "paper section 3 design choice (no load chaining)",
                scale);

    Runner runner(scale);
    const auto &jobs = jobQueueOrder();
    Table t({"machine", "no chain (k)", "with chain (k)",
             "gain from chaining"});
    for (const int c : {1, 2, 3, 4}) {
        MachineParams p = MachineParams::multithreaded(c);
        auto timeOf = [&](bool chain) {
            MachineParams q = p;
            q.loadChaining = chain;
            if (c == 1)
                return static_cast<double>(
                    runner.sequentialReferenceTime(jobs, q));
            return static_cast<double>(
                runner.runJobQueue(jobs, q).cycles);
        };
        const double off = timeOf(false);
        const double on = timeOf(true);
        t.row()
            .add(c == 1 ? std::string("baseline")
                        : format("mth%d", c))
            .add(off / 1e3, 1)
            .add(on / 1e3, 1)
            .add(off / on, 3);
    }
    t.print();
    std::printf("\nexpectation: chaining helps the baseline most; "
                "with 3-4 threads the memory port is already near "
                "saturation and the gain shrinks.\n");
    return 0;
}
