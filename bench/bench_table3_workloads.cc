/**
 * @file
 * Table 3: basic operation counts of the ten benchmark programs,
 * measured from the synthetic instruction streams and scaled back to
 * the paper's units (millions), side by side with the paper's values.
 */

#include "bench/bench_util.hh"
#include "src/common/strutil.hh"
#include "src/common/table.hh"
#include "src/trace/analyzer.hh"
#include "src/workload/suite.hh"

int
main()
{
    using namespace mtv;
    const double scale = benchScale();
    benchBanner("Table 3 - benchmark operation counts",
                "Espasa & Valero, HPCA-3 1997, Table 3", scale);

    // Trace analysis only (no simulation batch): one worker suffices.
    ExperimentEngine engine(EngineOptions{1});
    Table t({"program", "suite", "#insns S (M)", "#insns V (M)",
             "#ops V (M)", "% vect", "avg VL", "paper %vect",
             "paper VL"});
    for (const auto &spec : benchmarkSuite()) {
        const TraceStats &stats = engine.programStats(spec.name, scale);
        t.row()
            .add(format("%s (%s)", spec.name.c_str(),
                        spec.abbrev.c_str()))
            .add(spec.suite)
            .add(static_cast<double>(stats.scalarInstructions) / 1e6 /
                     scale,
                 1)
            .add(static_cast<double>(stats.vectorInstructions) / 1e6 /
                     scale,
                 1)
            .add(static_cast<double>(stats.vectorOperations) / 1e6 /
                     scale,
                 1)
            .add(stats.percentVectorization(), 1)
            .add(stats.averageVectorLength(), 0)
            .add(spec.percentVect, 1)
            .add(spec.avgVectorLength, 0);
    }
    t.print();
    return 0;
}
