/**
 * @file
 * Figure 6: speedup of the multithreaded architecture over the
 * reference for each benchmark at 2, 3 and 4 hardware contexts
 * (memory latency 50), averaged over the Table 2 groupings using the
 * paper's restart-and-fraction accounting.
 */

#include "bench/bench_util.hh"
#include "src/common/chart.hh"
#include "src/common/strutil.hh"
#include "src/common/table.hh"
#include "src/driver/experiments.hh"

int
main()
{
    using namespace mtv;
    const double scale = benchScale();
    benchBanner("Figure 6 - multithreaded speedup per program",
                "Espasa & Valero, HPCA-3 1997, Figure 6", scale);

    Runner runner(scale);
    Table t({"program", "2 threads", "3 threads", "4 threads",
             "runs averaged"});
    BarChart bars(46);
    bars.fullScale(1.6);
    for (const auto &spec : benchmarkSuite()) {
        t.row().add(spec.name);
        int runs = 0;
        for (const int contexts : {2, 3, 4}) {
            const ProgramAverages avg =
                averagesFor(runner, spec.name, contexts,
                            MachineParams::multithreaded(contexts));
            t.add(avg.speedup, 3);
            runs += avg.runs;
            bars.add(format("%s/%d", spec.abbrev.c_str(), contexts),
                     avg.speedup);
        }
        t.add(runs);
    }
    t.print();
    std::printf("\nspeedup bars (full scale = 1.6):\n%s",
                bars.render().c_str());
    std::printf("\npaper: 2-thread speedups typically 1.2-1.4; "
                "3 threads sustain ~1.3 up to 1.51; 4 threads add "
                "little more. Highest speedups belong to trfd/dyfesm "
                "(low solo utilization leaves holes to fill).\n");
    return 0;
}
