/**
 * @file
 * Figure 6: speedup of the multithreaded architecture over the
 * reference for each benchmark at 2, 3 and 4 hardware contexts
 * (memory latency 50), averaged over the Table 2 groupings using the
 * paper's restart-and-fraction accounting. All 250 group runs are
 * declared up front and executed across the engine's worker pool.
 */

#include <chrono>

#include "bench/bench_util.hh"
#include "src/common/chart.hh"
#include "src/common/strutil.hh"
#include "src/common/table.hh"
#include "src/workload/suite.hh"

int
main()
{
    using namespace mtv;
    const double scale = benchScale();
    benchBanner("Figure 6 - multithreaded speedup per program",
                "Espasa & Valero, HPCA-3 1997, Figure 6", scale);

    // Declare the whole figure: every grouping of every program at
    // 2, 3 and 4 contexts.
    SweepBuilder sweep = suiteGroupingSweep(scale);

    ExperimentEngine engine = benchEngine();
    const auto start = std::chrono::steady_clock::now();
    const std::vector<RunResult> results = engine.runAll(sweep.specs());
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();

    // Render from the slice metadata (program + contexts travel with
    // each slice, so rows never depend on batch position).
    Table t({"program", "2 threads", "3 threads", "4 threads",
             "runs averaged"});
    BarChart bars(46);
    bars.fullScale(1.6);
    std::string current;
    int runs = 0;
    for (const auto &slice : sweep.slices()) {
        const GroupAverages avg = averageOf(slice, results);
        if (avg.program != current) {
            if (!current.empty())
                t.add(runs);
            t.row().add(avg.program);
            current = avg.program;
            runs = 0;
        }
        t.add(avg.speedup, 3);
        runs += avg.runs;
        bars.add(format("%s/%d",
                        findProgram(avg.program).abbrev.c_str(),
                        avg.contexts),
                 avg.speedup);
    }
    t.add(runs);
    t.print();
    std::printf("\nspeedup bars (full scale = 1.6):\n%s",
                bars.render().c_str());
    std::printf("\npaper: 2-thread speedups typically 1.2-1.4; "
                "3 threads sustain ~1.3 up to 1.51; 4 threads add "
                "little more. Highest speedups belong to trfd/dyfesm "
                "(low solo utilization leaves holes to fill).\n");
    benchEngineSummary(engine, seconds);
    return 0;
}
