/**
 * @file
 * Figure 5: percentage of cycles the single memory port is idle on
 * the reference architecture, for four memory latencies. The paper
 * reads 30-65% idle at latency 70 — all of it an opportunity for
 * another thread's memory instructions.
 */

#include "bench/bench_util.hh"
#include "src/common/strutil.hh"
#include "src/common/table.hh"
#include "src/driver/experiments.hh"
#include "src/driver/runner.hh"

int
main()
{
    using namespace mtv;
    const double scale = benchScale();
    benchBanner("Figure 5 - % cycles with the memory port idle",
                "Espasa & Valero, HPCA-3 1997, Figure 5", scale);

    Runner runner(scale);
    std::vector<std::string> headers = {"program"};
    for (const int lat : figure4Latencies())
        headers.push_back(format("lat %d", lat));
    Table t(headers);
    for (const auto &spec : benchmarkSuite()) {
        t.row().add(spec.name);
        for (const int lat : figure4Latencies()) {
            MachineParams p = MachineParams::reference();
            p.memLatency = lat;
            const SimStats &s = runner.referenceRun(spec.name, p);
            t.add(100.0 * s.memPortIdleFraction(), 1);
        }
    }
    t.print();
    return 0;
}
