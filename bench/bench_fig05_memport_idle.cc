/**
 * @file
 * Figure 5: percentage of cycles the single memory port is idle on
 * the reference architecture, for four memory latencies. The paper
 * reads 30-65% idle at latency 70 — all of it an opportunity for
 * another thread's memory instructions.
 */

#include "bench/bench_util.hh"
#include "src/common/strutil.hh"
#include "src/common/table.hh"
#include "src/driver/experiments.hh"

int
main()
{
    using namespace mtv;
    const double scale = benchScale();
    benchBanner("Figure 5 - % cycles with the memory port idle",
                "Espasa & Valero, HPCA-3 1997, Figure 5", scale);

    const auto &lats = figure4Latencies();
    SweepBuilder sweep(scale);
    for (const auto &spec : benchmarkSuite()) {
        for (const int lat : lats) {
            MachineParams p = MachineParams::reference();
            p.memLatency = lat;
            sweep.addReference(spec.name, p);
        }
    }

    ExperimentEngine engine = benchEngine();
    const std::vector<RunResult> results = engine.runAll(sweep.specs());

    std::vector<std::string> headers = {"program"};
    for (const int lat : lats)
        headers.push_back(format("lat %d", lat));
    Table t(headers);
    size_t next = 0;
    for (const auto &spec : benchmarkSuite()) {
        t.row().add(spec.name);
        for (size_t l = 0; l < lats.size(); ++l)
            t.add(100.0 * results[next++].stats.memPortIdleFraction(),
                  1);
    }
    t.print();
    return 0;
}
