/**
 * @file
 * Simulator-throughput microbenchmark (google-benchmark): simulated
 * cycles and instructions per wall-clock second for each machine
 * configuration, on a fixed suite slice. Guards against performance
 * regressions in the cycle loop. Runs through an *uncached*
 * ExperimentEngine (memoize off) so every iteration pays for a real
 * simulation instead of a cache lookup.
 *
 * The BM_Kernel* pairs run the same configuration under the
 * cycle-stepped and the event-driven kernel; the ratio of their
 * sim_cycles/s counters is the event kernel's speedup (the CI
 * kernel-parity job records both into BENCH_simspeed.json). The
 * headline pair is the Figure 10 latency sweep's worst point —
 * memory latency 100 on the reference machine — where the stepped
 * kernel spends almost every cycle discovering that nothing can
 * dispatch.
 */

#include <benchmark/benchmark.h>

#include <chrono>

#include "src/api/engine.hh"
#include "src/workload/suite.hh"

namespace
{

using namespace mtv;

constexpr double speedScale = 2e-5;

mtv::EngineOptions
uncached(SimKernel kernel = SimKernel::Event)
{
    EngineOptions options;
    options.workers = 1;    // the benchmark loop provides the timing
    options.memoize = false;
    options.kernel = kernel;
    return options;
}

void
runMachine(benchmark::State &state, const MachineParams &params,
           SimKernel kernel = SimKernel::Event,
           double scale = speedScale)
{
    ExperimentEngine engine(uncached(kernel));
    const std::vector<std::string> jobs = {"flo52", "tomcatv", "trfd",
                                           "dyfesm"};
    const RunSpec spec =
        params.contexts == 1
            ? RunSpec::single("flo52", params, scale)
            : RunSpec::jobQueue(jobs, params, scale);
    uint64_t cycles = 0;
    uint64_t instrs = 0;
    for (auto _ : state) {
        const SimStats s = engine.run(spec).stats;
        benchmark::DoNotOptimize(s.cycles);
        cycles += s.cycles;
        instrs += s.dispatches;
    }
    state.counters["sim_cycles/s"] = benchmark::Counter(
        static_cast<double>(cycles), benchmark::Counter::kIsRate);
    state.counters["sim_instrs/s"] = benchmark::Counter(
        static_cast<double>(instrs), benchmark::Counter::kIsRate);
}

/** Figure 10's latency-100 reference point (the stepped worst case). */
MachineParams
fig10Latency100()
{
    MachineParams p = MachineParams::reference();
    p.memLatency = 100;
    return p;
}

/**
 * Scale for the kernel A/B pairs: long enough runs that the
 * engine's fixed per-run cost (program generation, spec handling —
 * identical for both kernels) does not dilute the kernel ratio.
 */
constexpr double kernelScale = 1e-4;

void
BM_Reference(benchmark::State &state)
{
    runMachine(state, MachineParams::reference());
}

void
BM_Multithreaded(benchmark::State &state)
{
    runMachine(state,
               MachineParams::multithreaded(
                   static_cast<int>(state.range(0))));
}

void
BM_DualScalar(benchmark::State &state)
{
    runMachine(state, MachineParams::fujitsuDualScalar());
}

void
BM_WorkloadGeneration(benchmark::State &state)
{
    const ProgramSpec &spec = findProgram("swm256");
    uint64_t instrs = 0;
    for (auto _ : state) {
        SyntheticProgram p(spec, speedScale);
        benchmark::DoNotOptimize(p.count());
        instrs += p.count();
    }
    state.counters["gen_instrs/s"] = benchmark::Counter(
        static_cast<double>(instrs), benchmark::Counter::kIsRate);
}

/**
 * Batch-dispatch overhead: a 16-spec sweep through runAll(). The
 * work happens on the engine's worker thread, so this benchmark (and
 * the sweep pair below) times iterations manually — rate counters
 * divide by wall time instead of the waiting caller's ~zero CPU time.
 */
void
BM_EngineBatch(benchmark::State &state)
{
    ExperimentEngine engine(uncached());
    std::vector<RunSpec> specs;
    for (int i = 0; i < 16; ++i) {
        MachineParams p = MachineParams::reference();
        p.memLatency = 1 + i;
        specs.push_back(RunSpec::single("dyfesm", p, speedScale));
    }
    uint64_t cycles = 0;
    for (auto _ : state) {
        const auto start = std::chrono::steady_clock::now();
        for (const auto &r : engine.runAll(specs))
            cycles += r.stats.cycles;
        benchmark::DoNotOptimize(cycles);
        state.SetIterationTime(
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - start)
                .count());
    }
    state.counters["sim_cycles/s"] = benchmark::Counter(
        static_cast<double>(cycles), benchmark::Counter::kIsRate);
}

// ----- stepped vs event kernel (bit-identical results; see
// tests/test_golden.cc) -----

void
BM_KernelStepped_Fig10Lat100(benchmark::State &state)
{
    runMachine(state, fig10Latency100(), SimKernel::Stepped,
               kernelScale);
}

void
BM_KernelEvent_Fig10Lat100(benchmark::State &state)
{
    runMachine(state, fig10Latency100(), SimKernel::Event,
               kernelScale);
}

void
BM_KernelBatched_Fig10Lat100(benchmark::State &state)
{
    runMachine(state, fig10Latency100(), SimKernel::Batched,
               kernelScale);
}

void
BM_KernelStepped_Mth4Lat100(benchmark::State &state)
{
    MachineParams p = MachineParams::multithreaded(4);
    p.memLatency = 100;
    runMachine(state, p, SimKernel::Stepped, kernelScale);
}

void
BM_KernelEvent_Mth4Lat100(benchmark::State &state)
{
    MachineParams p = MachineParams::multithreaded(4);
    p.memLatency = 100;
    runMachine(state, p, SimKernel::Event, kernelScale);
}

void
BM_KernelBatched_Mth4Lat100(benchmark::State &state)
{
    MachineParams p = MachineParams::multithreaded(4);
    p.memLatency = 100;
    runMachine(state, p, SimKernel::Batched, kernelScale);
}

/**
 * The whole Figure 10 latency sweep through runAll() — the workload
 * the batched kernel exists for: on the batched engine the 7 family-
 * mates coalesce into one lockstep runBatch() call, on the event
 * engine they run one VectorSim each. The ratio of their
 * sim_cycles/s is the tentpole's headline number; CI ratchets it
 * with perf_gate.py --min-ratio.
 */
void
runFig10Sweep(benchmark::State &state, SimKernel kernel)
{
    ExperimentEngine engine(uncached(kernel));
    std::vector<RunSpec> specs;
    for (const int latency : {1, 20, 40, 50, 60, 80, 100}) {
        MachineParams p = MachineParams::reference();
        p.memLatency = latency;
        specs.push_back(RunSpec::single("flo52", p, kernelScale));
    }
    uint64_t cycles = 0;
    uint64_t instrs = 0;
    for (auto _ : state) {
        const auto start = std::chrono::steady_clock::now();
        for (const auto &r : engine.runAll(specs)) {
            cycles += r.stats.cycles;
            instrs += r.stats.dispatches;
        }
        benchmark::DoNotOptimize(cycles);
        state.SetIterationTime(
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - start)
                .count());
    }
    state.counters["sim_cycles/s"] = benchmark::Counter(
        static_cast<double>(cycles), benchmark::Counter::kIsRate);
    state.counters["sim_instrs/s"] = benchmark::Counter(
        static_cast<double>(instrs), benchmark::Counter::kIsRate);
}

void
BM_KernelEvent_Fig10Sweep(benchmark::State &state)
{
    runFig10Sweep(state, SimKernel::Event);
}

void
BM_KernelBatched_Fig10Sweep(benchmark::State &state)
{
    runFig10Sweep(state, SimKernel::Batched);
}

BENCHMARK(BM_Reference);
BENCHMARK(BM_Multithreaded)->Arg(2)->Arg(3)->Arg(4);
BENCHMARK(BM_DualScalar);
BENCHMARK(BM_WorkloadGeneration);
BENCHMARK(BM_EngineBatch)->UseManualTime();
BENCHMARK(BM_KernelStepped_Fig10Lat100);
BENCHMARK(BM_KernelEvent_Fig10Lat100);
BENCHMARK(BM_KernelBatched_Fig10Lat100);
BENCHMARK(BM_KernelStepped_Mth4Lat100);
BENCHMARK(BM_KernelEvent_Mth4Lat100);
BENCHMARK(BM_KernelBatched_Mth4Lat100);
BENCHMARK(BM_KernelEvent_Fig10Sweep)->UseManualTime();
BENCHMARK(BM_KernelBatched_Fig10Sweep)->UseManualTime();

} // namespace

BENCHMARK_MAIN();
