/**
 * @file
 * Simulator-throughput microbenchmark (google-benchmark): simulated
 * cycles and instructions per wall-clock second for each machine
 * configuration, on a fixed suite slice. Guards against performance
 * regressions in the cycle loop.
 */

#include <benchmark/benchmark.h>

#include "src/core/sim.hh"
#include "src/driver/runner.hh"

namespace
{

using namespace mtv;

constexpr double speedScale = 2e-5;

void
runMachine(benchmark::State &state, MachineParams params)
{
    Runner runner(speedScale);
    const std::vector<std::string> jobs = {"flo52", "tomcatv", "trfd",
                                           "dyfesm"};
    uint64_t cycles = 0;
    uint64_t instrs = 0;
    for (auto _ : state) {
        const SimStats s = params.contexts == 1
                               ? [&] {
                                     auto src =
                                         runner.instantiate("flo52");
                                     VectorSim sim(params);
                                     return sim.runSingle(*src);
                                 }()
                               : runner.runJobQueue(jobs, params);
        benchmark::DoNotOptimize(s.cycles);
        cycles += s.cycles;
        instrs += s.dispatches;
    }
    state.counters["sim_cycles/s"] = benchmark::Counter(
        static_cast<double>(cycles), benchmark::Counter::kIsRate);
    state.counters["sim_instrs/s"] = benchmark::Counter(
        static_cast<double>(instrs), benchmark::Counter::kIsRate);
}

void
BM_Reference(benchmark::State &state)
{
    runMachine(state, MachineParams::reference());
}

void
BM_Multithreaded(benchmark::State &state)
{
    runMachine(state,
               MachineParams::multithreaded(
                   static_cast<int>(state.range(0))));
}

void
BM_DualScalar(benchmark::State &state)
{
    runMachine(state, MachineParams::fujitsuDualScalar());
}

void
BM_WorkloadGeneration(benchmark::State &state)
{
    const ProgramSpec &spec = findProgram("swm256");
    uint64_t instrs = 0;
    for (auto _ : state) {
        SyntheticProgram p(spec, speedScale);
        benchmark::DoNotOptimize(p.count());
        instrs += p.count();
    }
    state.counters["gen_instrs/s"] = benchmark::Counter(
        static_cast<double>(instrs), benchmark::Counter::kIsRate);
}

BENCHMARK(BM_Reference);
BENCHMARK(BM_Multithreaded)->Arg(2)->Arg(3)->Arg(4);
BENCHMARK(BM_DualScalar);
BENCHMARK(BM_WorkloadGeneration);

} // namespace

BENCHMARK_MAIN();
