/**
 * @file
 * Simulator-throughput microbenchmark (google-benchmark): simulated
 * cycles and instructions per wall-clock second for each machine
 * configuration, on a fixed suite slice. Guards against performance
 * regressions in the cycle loop. Runs through an *uncached*
 * ExperimentEngine (memoize off) so every iteration pays for a real
 * simulation instead of a cache lookup.
 */

#include <benchmark/benchmark.h>

#include "src/api/engine.hh"
#include "src/workload/suite.hh"

namespace
{

using namespace mtv;

constexpr double speedScale = 2e-5;

mtv::EngineOptions
uncached()
{
    EngineOptions options;
    options.workers = 1;    // the benchmark loop provides the timing
    options.memoize = false;
    return options;
}

void
runMachine(benchmark::State &state, const MachineParams &params)
{
    ExperimentEngine engine(uncached());
    const std::vector<std::string> jobs = {"flo52", "tomcatv", "trfd",
                                           "dyfesm"};
    const RunSpec spec =
        params.contexts == 1
            ? RunSpec::single("flo52", params, speedScale)
            : RunSpec::jobQueue(jobs, params, speedScale);
    uint64_t cycles = 0;
    uint64_t instrs = 0;
    for (auto _ : state) {
        const SimStats s = engine.run(spec).stats;
        benchmark::DoNotOptimize(s.cycles);
        cycles += s.cycles;
        instrs += s.dispatches;
    }
    state.counters["sim_cycles/s"] = benchmark::Counter(
        static_cast<double>(cycles), benchmark::Counter::kIsRate);
    state.counters["sim_instrs/s"] = benchmark::Counter(
        static_cast<double>(instrs), benchmark::Counter::kIsRate);
}

void
BM_Reference(benchmark::State &state)
{
    runMachine(state, MachineParams::reference());
}

void
BM_Multithreaded(benchmark::State &state)
{
    runMachine(state,
               MachineParams::multithreaded(
                   static_cast<int>(state.range(0))));
}

void
BM_DualScalar(benchmark::State &state)
{
    runMachine(state, MachineParams::fujitsuDualScalar());
}

void
BM_WorkloadGeneration(benchmark::State &state)
{
    const ProgramSpec &spec = findProgram("swm256");
    uint64_t instrs = 0;
    for (auto _ : state) {
        SyntheticProgram p(spec, speedScale);
        benchmark::DoNotOptimize(p.count());
        instrs += p.count();
    }
    state.counters["gen_instrs/s"] = benchmark::Counter(
        static_cast<double>(instrs), benchmark::Counter::kIsRate);
}

/** Batch-dispatch overhead: a 16-spec sweep through runAll(). */
void
BM_EngineBatch(benchmark::State &state)
{
    ExperimentEngine engine(uncached());
    std::vector<RunSpec> specs;
    for (int i = 0; i < 16; ++i) {
        MachineParams p = MachineParams::reference();
        p.memLatency = 1 + i;
        specs.push_back(RunSpec::single("dyfesm", p, speedScale));
    }
    uint64_t cycles = 0;
    for (auto _ : state) {
        for (const auto &r : engine.runAll(specs))
            cycles += r.stats.cycles;
        benchmark::DoNotOptimize(cycles);
    }
    state.counters["sim_cycles/s"] = benchmark::Counter(
        static_cast<double>(cycles), benchmark::Counter::kIsRate);
}

BENCHMARK(BM_Reference);
BENCHMARK(BM_Multithreaded)->Arg(2)->Arg(3)->Arg(4);
BENCHMARK(BM_DualScalar);
BENCHMARK(BM_WorkloadGeneration);
BENCHMARK(BM_EngineBatch);

} // namespace

BENCHMARK_MAIN();
