/**
 * @file
 * Figure 7: occupation of the single memory port for 2, 3 and 4
 * contexts — multithreaded machine ("mth") versus the same program
 * tuples run sequentially on the reference machine ("ref").
 */

#include "bench/bench_util.hh"
#include "src/common/table.hh"
#include "src/workload/suite.hh"

int
main()
{
    using namespace mtv;
    const double scale = benchScale();
    benchBanner("Figure 7 - memory port occupation, mth vs ref",
                "Espasa & Valero, HPCA-3 1997, Figure 7", scale);

    SweepBuilder sweep = suiteGroupingSweep(scale);
    ExperimentEngine engine = benchEngine();
    const std::vector<RunResult> results = engine.runAll(sweep.specs());

    Table t({"program", "mth 2", "ref 2", "mth 3", "ref 3", "mth 4",
             "ref 4"});
    std::string current;
    for (const auto &slice : sweep.slices()) {
        const GroupAverages avg = averageOf(slice, results);
        if (avg.program != current) {
            t.row().add(avg.program);
            current = avg.program;
        }
        t.add(avg.mthOccupation, 3).add(avg.refOccupation, 3);
    }
    t.print();
    std::printf("\npaper: 2 contexts reach ~80-86%% occupation vs "
                "~60%% sequential; 3 contexts ~90%%; occupation falls "
                "towards the less-vectorized programs (scalar loops "
                "are bounded near 1/3).\n");
    return 0;
}
