/**
 * @file
 * Extension: the decoupled vector architecture of Espasa & Valero's
 * HPCA-2 1996 paper, which this paper's introduction positions
 * against: "decoupling did not manage to fully use the total
 * bandwidth of the memory port, and the bus was idle still for a
 * significant fraction of the total execution time". This bench
 * reproduces that comparison: baseline vs decoupled vs multithreaded
 * vs both, across memory latencies.
 */

#include "bench/bench_util.hh"
#include "src/common/table.hh"
#include "src/workload/suite.hh"

int
main()
{
    using namespace mtv;
    const double scale = benchScale();
    benchBanner("Extension - decoupled vector architecture comparison",
                "paper section 1/2 (HPCA-2'96 predecessor)", scale);

    const auto &jobs = jobQueueOrder();
    const std::vector<int> lats = {1, 20, 50, 100};

    MachineParams bothP = MachineParams::multithreaded(2);
    bothP.decoupleDepth = 4;
    const std::vector<MachineParams> machines = {
        MachineParams::reference(),
        MachineParams::decoupledVector(4),
        MachineParams::multithreaded(2),
        bothP,
    };
    SweepBuilder sweep(scale);
    for (const int lat : lats) {
        for (MachineParams p : machines) {
            p.memLatency = lat;
            sweep.addJobQueue(jobs, p);
        }
    }

    ExperimentEngine engine = benchEngine();
    const std::vector<RunResult> results = engine.runAll(sweep.specs());

    Table t({"latency", "baseline (k)", "dva (k)", "mth2 (k)",
             "dva+mth2 (k)", "occ base", "occ dva", "occ mth2"});
    size_t next = 0;
    for (const int lat : lats) {
        const SimStats &base = results[next].stats;
        const SimStats &dva = results[next + 1].stats;
        const SimStats &mth = results[next + 2].stats;
        const SimStats &both = results[next + 3].stats;
        next += 4;
        t.row()
            .add(lat)
            .add(static_cast<double>(base.cycles) / 1e3, 1)
            .add(static_cast<double>(dva.cycles) / 1e3, 1)
            .add(static_cast<double>(mth.cycles) / 1e3, 1)
            .add(static_cast<double>(both.cycles) / 1e3, 1)
            .add(base.memPortOccupation(), 3)
            .add(dva.memPortOccupation(), 3)
            .add(mth.memPortOccupation(), 3);
    }
    t.print();
    std::printf("\nreading: decoupling flattens the baseline's "
                "latency curve (the HPCA-2'96 result) but leaves the "
                "memory port short of saturation; multithreading "
                "pushes occupation higher, and the two compose.\n");
    return 0;
}
