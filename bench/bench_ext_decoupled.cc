/**
 * @file
 * Extension: the decoupled vector architecture of Espasa & Valero's
 * HPCA-2 1996 paper, which this paper's introduction positions
 * against: "decoupling did not manage to fully use the total
 * bandwidth of the memory port, and the bus was idle still for a
 * significant fraction of the total execution time". This bench
 * reproduces that comparison: baseline vs decoupled vs multithreaded
 * vs both, across memory latencies.
 */

#include "bench/bench_util.hh"
#include "src/common/table.hh"
#include "src/driver/experiments.hh"

int
main()
{
    using namespace mtv;
    const double scale = benchScale();
    benchBanner("Extension - decoupled vector architecture comparison",
                "paper section 1/2 (HPCA-2'96 predecessor)", scale);

    Runner runner(scale);
    const auto &jobs = jobQueueOrder();

    Table t({"latency", "baseline (k)", "dva (k)", "mth2 (k)",
             "dva+mth2 (k)", "occ base", "occ dva", "occ mth2"});
    for (const int lat : {1, 20, 50, 100}) {
        auto statsOf = [&](MachineParams p) {
            p.memLatency = lat;
            return runner.runJobQueue(jobs, p);
        };
        const SimStats base = statsOf(MachineParams::reference());
        const SimStats dva = statsOf(MachineParams::decoupledVector(4));
        const SimStats mth = statsOf(MachineParams::multithreaded(2));
        MachineParams bothP = MachineParams::multithreaded(2);
        bothP.decoupleDepth = 4;
        const SimStats both = statsOf(bothP);
        t.row()
            .add(lat)
            .add(static_cast<double>(base.cycles) / 1e3, 1)
            .add(static_cast<double>(dva.cycles) / 1e3, 1)
            .add(static_cast<double>(mth.cycles) / 1e3, 1)
            .add(static_cast<double>(both.cycles) / 1e3, 1)
            .add(base.memPortOccupation(), 3)
            .add(dva.memPortOccupation(), 3)
            .add(mth.memPortOccupation(), 3);
    }
    t.print();
    std::printf("\nreading: decoupling flattens the baseline's "
                "latency curve (the HPCA-2'96 result) but leaves the "
                "memory port short of saturation; multithreading "
                "pushes occupation higher, and the two compose.\n");
    return 0;
}
