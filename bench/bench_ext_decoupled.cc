/**
 * @file
 * Extension: the decoupled vector architecture of Espasa & Valero's
 * HPCA-2 1996 paper, which this paper's introduction positions
 * against: "decoupling did not manage to fully use the total
 * bandwidth of the memory port, and the bus was idle still for a
 * significant fraction of the total execution time". This bench
 * reproduces that comparison: baseline vs decoupled vs multithreaded
 * vs both, across memory latencies.
 *
 * Thin adapter over the registered "ext-decoupled" sweep family: the
 * design/latency grid lives in expandSweep() (src/api/sweep.cc),
 * shared with the daemon and `mtvctl sweep --family ext-decoupled`;
 * decoupling rides the RunSpec decoupleDepth axis. `mtvctl compare
 * --family ext-decoupled` renders the same data as per-latency
 * speedup curves.
 */

#include "bench/bench_util.hh"
#include "src/common/table.hh"

int
main()
{
    using namespace mtv;
    const double scale = benchScale();
    benchBanner("Extension - decoupled vector architecture comparison",
                "paper section 1/2 (HPCA-2'96 predecessor)", scale);

    SweepRequest request;
    request.family = "ext-decoupled";
    request.scale = scale;
    SweepBuilder sweep = expandSweep(request);

    ExperimentEngine engine = benchEngine();
    const std::vector<RunResult> results = engine.runAll(sweep.specs());

    // Slices: [0] baseline, [1] decoupled, [2] mth2, [3] both — one
    // latency-parallel slice per design, extDecoupledLatencies() per
    // slice in order.
    const SweepSlice &base = sweep.slices().at(0);
    const SweepSlice &dva = sweep.slices().at(1);
    const SweepSlice &mth = sweep.slices().at(2);
    const SweepSlice &both = sweep.slices().at(3);

    Table t({"latency", "baseline (k)", "dva (k)", "mth2 (k)",
             "dva+mth2 (k)", "occ base", "occ dva", "occ mth2"});
    for (size_t i = 0; i < base.count; ++i) {
        const SimStats &b = results[base.first + i].stats;
        const SimStats &d = results[dva.first + i].stats;
        const SimStats &m = results[mth.first + i].stats;
        const SimStats &bm = results[both.first + i].stats;
        const MachineParams p =
            results[base.first + i].spec.effectiveParams();
        t.row()
            .add(p.memLatency)
            .add(static_cast<double>(b.cycles) / 1e3, 1)
            .add(static_cast<double>(d.cycles) / 1e3, 1)
            .add(static_cast<double>(m.cycles) / 1e3, 1)
            .add(static_cast<double>(bm.cycles) / 1e3, 1)
            .add(b.memPortOccupation(), 3)
            .add(d.memPortOccupation(), 3)
            .add(m.memPortOccupation(), 3);
    }
    t.print();
    std::printf("\nreading: decoupling flattens the baseline's "
                "latency curve (the HPCA-2'96 result) but leaves the "
                "memory port short of saturation; multithreading "
                "pushes occupation higher, and the two compose.\n");
    return 0;
}
