/**
 * @file
 * Diagnostic: where do decode cycles go? For each benchmark on the
 * reference machine and on the 3-context multithreaded machine,
 * break lost decode cycles down by block reason. This is the
 * analysis behind the paper's section 5 ("Bottlenecks in the
 * Reference Architecture"): the dominant stall on the baseline is
 * waiting for memory data (source-not-ready through loads), which is
 * exactly the hole multithreading fills.
 */

#include "bench/bench_util.hh"
#include "src/common/strutil.hh"
#include "src/common/table.hh"
#include "src/workload/suite.hh"

int
main()
{
    using namespace mtv;
    const double scale = benchScale();
    benchBanner("Diagnostic - decode-cycle loss by block reason",
                "paper section 5 bottleneck analysis", scale);

    // Per program: one reference run, one 3-context run of the
    // program paired with itself.
    SweepBuilder sweep(scale);
    for (const auto &spec : benchmarkSuite()) {
        sweep.addReference(spec.name, MachineParams::reference());
        sweep.addJobQueue({spec.name, spec.name, spec.name},
                          MachineParams::multithreaded(3));
    }

    ExperimentEngine engine = benchEngine();
    const std::vector<RunResult> results = engine.runAll(sweep.specs());

    std::vector<std::string> headers = {"program", "machine",
                                        "dispatch %"};
    // Report the interesting reasons; tiny ones fold into "other".
    const std::vector<BlockReason> shown = {
        BlockReason::SourceNotReady, BlockReason::DestBusy,
        BlockReason::MemPipeBusy,    BlockReason::MemPortBusy,
        BlockReason::FuBusy,         BlockReason::ScalarDep,
        BlockReason::FetchStall,
    };
    for (const auto reason : shown)
        headers.push_back(blockReasonName(reason));
    Table t(headers);

    auto addRow = [&](const std::string &program, const char *machine,
                      const SimStats &s) {
        // Aggregate across contexts.
        std::array<uint64_t,
                   static_cast<size_t>(BlockReason::NumReasons)>
            blocked{};
        for (const auto &ts : s.threads)
            for (size_t r = 0; r < blocked.size(); ++r)
                blocked[r] += ts.blocked[r];
        t.row().add(program).add(machine).add(
            format("%.1f", 100.0 * static_cast<double>(s.dispatches) /
                               std::max<uint64_t>(s.cycles, 1)));
        for (const auto reason : shown) {
            const uint64_t v = blocked[static_cast<size_t>(reason)];
            t.add(format("%.1f", 100.0 * static_cast<double>(v) /
                                     std::max<uint64_t>(s.cycles, 1)));
        }
    };

    size_t next = 0;
    for (const auto &spec : benchmarkSuite()) {
        addRow(spec.name, "ref", results[next++].stats);
        addRow(spec.name, "mth3", results[next++].stats);
    }
    t.print();
    std::printf("\ncolumns are %% of total cycles; 'dispatch' is the "
                "useful fraction (vector instructions are ~100-element "
                "macro-ops, so a few %% of dispatch cycles is full "
                "speed). mth3 rows aggregate three contexts, each "
                "recording its own stall per cycle, so their block "
                "columns can sum past 100%%. On the reference machine "
                "the big losses are source-not-ready (waiting on "
                "loads, no chaining) and mem-pipe-busy; multithreading "
                "shifts weight from the former into dispatches and "
                "pipe contention.\n");
    return 0;
}
