/**
 * @file
 * Figure 8: vector (arithmetic) operations per cycle for 2, 3 and 4
 * contexts, multithreaded vs sequential reference. The machine has
 * two vector pipes, so the metric ranges over [0, 2].
 */

#include "bench/bench_util.hh"
#include "src/common/table.hh"
#include "src/workload/suite.hh"

int
main()
{
    using namespace mtv;
    const double scale = benchScale();
    benchBanner("Figure 8 - vector operations per cycle (VOPC)",
                "Espasa & Valero, HPCA-3 1997, Figure 8", scale);

    SweepBuilder sweep = suiteGroupingSweep(scale);
    ExperimentEngine engine = benchEngine();
    const std::vector<RunResult> results = engine.runAll(sweep.specs());

    Table t({"program", "mth 2", "ref 2", "mth 3", "ref 3", "mth 4",
             "ref 4"});
    std::string current;
    for (const auto &slice : sweep.slices()) {
        const GroupAverages avg = averageOf(slice, results);
        if (avg.program != current) {
            t.row().add(avg.program);
            current = avg.program;
        }
        t.add(avg.mthVopc, 3).add(avg.refVopc, 3);
    }
    t.print();
    std::printf("\npaper: baseline VOPC 0.5-0.85; with 2 contexts the "
                "top-6 vectorizable programs reach ~1.0; with 3 they "
                "exceed 1.0 while the memory bus (already ~90%% busy) "
                "caps further gains.\n");
    return 0;
}
