/**
 * @file
 * Table 1: latency parameters of the reference and multithreaded
 * architectures (the DESIGN.md reconstruction of the garbled scan).
 */

#include "bench/bench_util.hh"
#include "src/common/strutil.hh"
#include "src/common/table.hh"
#include "src/isa/machine_params.hh"

int
main()
{
    using namespace mtv;
    benchBanner("Table 1 - machine latency parameters",
                "Espasa & Valero, HPCA-3 1997, Table 1", 1.0);

    const MachineParams ref = MachineParams::reference();
    MachineParams mth = MachineParams::multithreaded(4);
    // Section 8 charges the multithreaded register file an extra
    // crossbar cycle; the sweep bench quantifies its (tiny) impact.
    mth.readXbar = ref.readXbar + 1;
    mth.writeXbar = ref.writeXbar + 1;

    Table t({"parameter", "ref scalar (int/fp)", "ref vector",
             "mth scalar (int/fp)", "mth vector"});
    auto addRow = [&](const char *name, LatClass intCls,
                      LatClass fpCls) {
        t.row()
            .add(name)
            .add(format("%d/%d", ref.latency(intCls, false),
                        ref.latency(fpCls, false)))
            .add(ref.latency(intCls, true))
            .add(format("%d/%d", mth.latency(intCls, false),
                        mth.latency(fpCls, false)))
            .add(mth.latency(intCls, true));
    };
    addRow("add/sub", LatClass::IntAdd, LatClass::FpAdd);
    addRow("logic/shift", LatClass::Logic, LatClass::Logic);
    addRow("mul", LatClass::IntMul, LatClass::FpMul);
    addRow("div", LatClass::IntDiv, LatClass::FpDiv);
    addRow("sqrt", LatClass::Sqrt, LatClass::Sqrt);
    t.row().add("read x-bar").add("-").add(ref.readXbar).add("-")
        .add(mth.readXbar);
    t.row().add("write x-bar").add("-").add(ref.writeXbar).add("-")
        .add(mth.writeXbar);
    t.row().add("vector startup").add("-").add(ref.vectorStartup)
        .add("-").add(mth.vectorStartup);
    t.print();

    std::printf("\nmemory latency: %d cycles by default, swept 1..100 "
                "by the Figure 10-12 benches\n",
                ref.memLatency);
    return 0;
}
