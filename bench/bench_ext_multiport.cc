/**
 * @file
 * Extension (paper section 10): Cray-like machines with 3 memory
 * ports (2 load + 1 store). The paper predicts that such machines
 * "will require simultaneous issue of instructions from different
 * threads ... in order to also saturate its memory ports while
 * keeping the number of threads reasonably low" — this bench tests
 * that prediction by crossing port count with context count and
 * decode width.
 *
 * Thin adapter over the registered "ext-multiport" sweep family: the
 * grid lives in expandSweep() (src/api/sweep.cc), where the daemon,
 * the fleet router and `mtvctl sweep --family ext-multiport` share
 * it; this bench only renders the slices. The cross-design speedup
 * view of the same family is `mtvctl compare --family ext-multiport`.
 */

#include "bench/bench_util.hh"
#include "src/common/strutil.hh"
#include "src/common/table.hh"

int
main()
{
    using namespace mtv;
    const double scale = benchScale();
    benchBanner("Extension - Cray-style 3-port memory system",
                "paper section 10 future work", scale);

    SweepRequest request;
    request.family = "ext-multiport";
    request.scale = scale;
    SweepBuilder sweep = expandSweep(request);

    ExperimentEngine engine = benchEngine();
    const std::vector<RunResult> results = engine.runAll(sweep.specs());

    // One single-spec slice per machine, labelled "<machine>-wW";
    // ports and width come back out of the effective machine.
    Table t({"machine", "ports", "width", "cycles (k)",
             "per-port occ", "VOPC"});
    for (const SweepSlice &slice : sweep.slices()) {
        const RunResult &r = results[slice.first];
        const MachineParams p = r.spec.effectiveParams();
        const SimStats &s = r.stats;
        t.row()
            .add(slice.label.substr(0, slice.label.rfind("-w")))
            .add(format("%dld/%dst", p.loadPorts, p.storePorts))
            .add(p.decodeWidth)
            .add(static_cast<double>(s.cycles) / 1e3, 1)
            .add(s.memPortOccupation(), 3)
            .add(s.vopc(), 3);
    }
    t.print();
    std::printf("\nreading: on the 1-port Convex, more threads "
                "saturate the port and decode width adds little. On "
                "the 3-port Cray a single thread (and even a 1-wide "
                "decoder with many threads) cannot feed the ports; "
                "per-port occupation recovers only with both many "
                "contexts and a wider decoder — the paper's "
                "prediction.\n");
    return 0;
}
