/**
 * @file
 * Extension (paper section 10): Cray-like machines with 3 memory
 * ports (2 load + 1 store). The paper predicts that such machines
 * "will require simultaneous issue of instructions from different
 * threads ... in order to also saturate its memory ports while
 * keeping the number of threads reasonably low" — this bench tests
 * that prediction by crossing port count with context count and
 * decode width.
 */

#include "bench/bench_util.hh"
#include "src/common/strutil.hh"
#include "src/common/table.hh"
#include "src/workload/suite.hh"

int
main()
{
    using namespace mtv;
    const double scale = benchScale();
    benchBanner("Extension - Cray-style 3-port memory system",
                "paper section 10 future work", scale);

    const auto &jobs = jobQueueOrder();

    // The cross product, in the table's row order.
    struct Machine
    {
        std::string label;
        MachineParams params;
    };
    std::vector<Machine> machines;
    for (const bool cray : {false, true}) {
        for (const int c : {1, 2, 3, 4}) {
            for (const int width : {1, 2}) {
                if (width > c)
                    continue;
                MachineParams p = cray
                                      ? MachineParams::crayStyle(c)
                                      : MachineParams::multithreaded(c);
                p.decodeWidth = width;
                machines.push_back(
                    {format("%s-%dctx", cray ? "cray" : "convex", c),
                     p});
            }
        }
    }
    SweepBuilder sweep(scale);
    for (const auto &m : machines)
        sweep.addJobQueue(jobs, m.params);

    ExperimentEngine engine = benchEngine();
    const std::vector<RunResult> results = engine.runAll(sweep.specs());

    Table t({"machine", "ports", "width", "cycles (k)",
             "per-port occ", "VOPC"});
    for (size_t i = 0; i < machines.size(); ++i) {
        const MachineParams &p = machines[i].params;
        const SimStats &s = results[i].stats;
        t.row()
            .add(machines[i].label)
            .add(format("%dld/%dst", p.loadPorts, p.storePorts))
            .add(p.decodeWidth)
            .add(static_cast<double>(s.cycles) / 1e3, 1)
            .add(s.memPortOccupation(), 3)
            .add(s.vopc(), 3);
    }
    t.print();
    std::printf("\nreading: on the 1-port Convex, more threads "
                "saturate the port and decode width adds little. On "
                "the 3-port Cray a single thread (and even a 1-wide "
                "decoder with many threads) cannot feed the ports; "
                "per-port occupation recovers only with both many "
                "contexts and a wider decoder — the paper's "
                "prediction.\n");
    return 0;
}
