/**
 * @file
 * Figure 10: total execution time of the ten-benchmark job queue as
 * main-memory latency sweeps from 1 to 100 cycles — baseline, 2/3/4
 * multithreaded contexts, and the dependence-free IDEAL bound. The
 * whole sweep (baseline reference runs included) is declared as one
 * RunSpec batch, so the engine saturates every worker; run with
 * MTV_WORKERS=1 to measure the serial baseline of the sweep itself.
 */

#include <chrono>

#include "bench/bench_util.hh"
#include "src/common/chart.hh"
#include "src/common/strutil.hh"
#include "src/common/table.hh"
#include "src/driver/experiments.hh"

int
main()
{
    using namespace mtv;
    const double scale = benchScale();
    benchBanner("Figure 10 - execution time vs memory latency",
                "Espasa & Valero, HPCA-3 1997, Figure 10", scale);

    ExperimentEngine engine = benchEngine();
    const auto &jobs = jobQueueOrder();
    const IdealBound ideal = engine.idealTime(jobs, scale);

    // Declare the full sweep: per latency, the ten baseline reference
    // runs (whose cycles sum to the sequential time) and the 2/3/4-
    // context job-queue runs.
    const auto &lats = sweepLatencies();
    const std::vector<int> contexts = {2, 3, 4};
    SweepBuilder sweep(scale);
    for (const int lat : lats) {
        MachineParams ref = MachineParams::reference();
        ref.memLatency = lat;
        for (const auto &job : jobs)
            sweep.addReference(job, ref);
        for (const int c : contexts) {
            MachineParams p = MachineParams::multithreaded(c);
            p.memLatency = lat;
            sweep.addJobQueue(jobs, p);
        }
    }

    const auto startTime = std::chrono::steady_clock::now();
    const std::vector<RunResult> results = engine.runAll(sweep.specs());
    const double seconds = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() -
                               startTime)
                               .count();

    Table t({"latency", "baseline (k)", "mth2 (k)", "mth3 (k)",
             "mth4 (k)", "IDEAL (k)", "speedup mth2", "speedup mth3",
             "speedup mth4"});
    double base1 = 0;
    double mth2At1 = 0;
    double base100 = 0;
    double mth2At100 = 0;
    std::vector<double> xs;
    std::vector<double> ysBase;
    std::vector<double> ys2;
    std::vector<double> ys3;
    std::vector<double> ys4;
    std::vector<double> ysIdeal;
    const size_t perLat = jobs.size() + contexts.size();
    for (size_t l = 0; l < lats.size(); ++l) {
        const int lat = lats[l];
        const RunResult *block = &results[l * perLat];
        double base = 0;
        for (size_t j = 0; j < jobs.size(); ++j)
            base += static_cast<double>(block[j].stats.cycles);
        double mth[5] = {};
        for (size_t c = 0; c < contexts.size(); ++c) {
            mth[contexts[c]] = static_cast<double>(
                block[jobs.size() + c].stats.cycles);
        }
        t.row()
            .add(lat)
            .add(base / 1e3, 1)
            .add(mth[2] / 1e3, 1)
            .add(mth[3] / 1e3, 1)
            .add(mth[4] / 1e3, 1)
            .add(static_cast<double>(ideal.bound) / 1e3, 1)
            .add(base / mth[2], 3)
            .add(base / mth[3], 3)
            .add(base / mth[4], 3);
        if (lat == 1) {
            base1 = base;
            mth2At1 = mth[2];
        }
        if (lat == 100) {
            base100 = base;
            mth2At100 = mth[2];
        }
        xs.push_back(lat);
        ysBase.push_back(base / 1e3);
        ys2.push_back(mth[2] / 1e3);
        ys3.push_back(mth[3] / 1e3);
        ys4.push_back(mth[4] / 1e3);
        ysIdeal.push_back(static_cast<double>(ideal.bound) / 1e3);
    }
    t.print();

    std::printf("\nexecution time (k cycles) vs memory latency:\n");
    LineChart chart(64, 18);
    chart.series("baseline", xs, ysBase)
        .series("2 threads", xs, ys2)
        .series("3 threads", xs, ys3)
        .series("4 threads", xs, ys4)
        .series("IDEAL", xs, ysIdeal);
    std::fputs(chart.render().c_str(), stdout);

    std::printf("\nIDEAL binds on the %s.\n", ideal.binding());
    std::printf("baseline degradation 1 -> 100 cycles: +%.1f%%\n",
                100.0 * (base100 / base1 - 1.0));
    std::printf("mth2 degradation 1 -> 100 cycles:     +%.1f%% "
                "(paper: ~6.8%%)\n",
                100.0 * (mth2At100 / mth2At1 - 1.0));
    std::printf("paper: mth2 speedup 1.15 at latency 1, 1.45 at "
                "latency 100; the curve for 2 contexts is nearly "
                "flat.\n");
    benchEngineSummary(engine, seconds);
    return 0;
}
