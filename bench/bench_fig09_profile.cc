/**
 * @file
 * Figure 9: example execution profile of the ten benchmarks run
 * through the job queue on a 2-context machine at latency 50 — which
 * program occupied which hardware context, and when.
 */

#include <algorithm>

#include "bench/bench_util.hh"
#include "src/common/strutil.hh"
#include "src/common/table.hh"
#include "src/workload/suite.hh"

int
main()
{
    using namespace mtv;
    const double scale = benchScale();
    benchBanner("Figure 9 - job-queue execution profile, 2 contexts",
                "Espasa & Valero, HPCA-3 1997, Figure 9", scale);

    // Single-run bench: no batch to fan out, so one worker suffices.
    ExperimentEngine engine(EngineOptions{1});
    const MachineParams p = MachineParams::multithreaded(2);
    const RunResult run =
        engine.run(RunSpec::jobQueue(jobQueueOrder(), p, scale));
    const SimStats &s = run.stats;

    Table t({"context", "program", "start (k cycles)", "end (k cycles)",
             "span (k)"});
    for (const auto &job : s.jobs) {
        t.row()
            .add(format("thread %d", job.context))
            .add(format("%s (%s)", job.program.c_str(),
                        findProgram(job.program).abbrev.c_str()))
            .add(static_cast<double>(job.startCycle) / 1e3, 1)
            .add(static_cast<double>(job.endCycle) / 1e3, 1)
            .add(static_cast<double>(job.endCycle - job.startCycle) /
                     1e3,
                 1);
    }
    t.print();

    // ASCII Gantt chart, one lane per context.
    std::printf("\n");
    const int width = 72;
    for (int c = 0; c < p.contexts; ++c) {
        std::string lane(width, '.');
        for (const auto &job : s.jobs) {
            if (job.context != c)
                continue;
            const auto from = static_cast<size_t>(
                static_cast<double>(job.startCycle) / s.cycles * width);
            const auto to = static_cast<size_t>(
                static_cast<double>(job.endCycle) / s.cycles * width);
            const std::string abbrev = findProgram(job.program).abbrev;
            for (size_t i = from; i < std::min<size_t>(to, width); ++i)
                lane[i] = '-';
            if (from < lane.size()) {
                lane[from] = '|';
                lane.replace(from + 1 > lane.size() ? lane.size()
                                                    : from + 1,
                             std::min<size_t>(abbrev.size(),
                                              lane.size() - from - 1),
                             abbrev);
            }
        }
        std::printf("ctx %d  %s\n", c, lane.c_str());
    }
    std::printf("total: %s cycles\n",
                withCommas(s.cycles).c_str());
    return 0;
}
