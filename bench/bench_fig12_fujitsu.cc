/**
 * @file
 * Figure 12: the Fujitsu VP2000-style dual-scalar machine (two full
 * decode/scalar units sharing the vector facility, up to 2 dispatches
 * per cycle) versus pure 2-context multithreading, with the 3- and
 * 4-context machines for reference, across memory latencies.
 */

#include "bench/bench_util.hh"
#include "src/common/strutil.hh"
#include "src/common/table.hh"
#include "src/driver/experiments.hh"

int
main()
{
    using namespace mtv;
    const double scale = benchScale();
    benchBanner("Figure 12 - dual scalar units vs multithreading",
                "Espasa & Valero, HPCA-3 1997, Figure 12", scale);

    Runner runner(scale);
    const auto &jobs = jobQueueOrder();
    Table t({"latency", "mth2 (k)", "fujitsu (k)", "mth3 (k)",
             "mth4 (k)", "fuj advantage %"});
    double advAt1 = 0;
    double advAt100 = 0;
    for (const int lat : sweepLatencies()) {
        auto timeOf = [&](MachineParams p) {
            p.memLatency = lat;
            return static_cast<double>(
                runner.runJobQueue(jobs, p).cycles);
        };
        const double mth2 = timeOf(MachineParams::multithreaded(2));
        const double fuj = timeOf(MachineParams::fujitsuDualScalar());
        const double mth3 = timeOf(MachineParams::multithreaded(3));
        const double mth4 = timeOf(MachineParams::multithreaded(4));
        const double adv = 100.0 * (mth2 / fuj - 1.0);
        t.row()
            .add(lat)
            .add(mth2 / 1e3, 1)
            .add(fuj / 1e3, 1)
            .add(mth3 / 1e3, 1)
            .add(mth4 / 1e3, 1)
            .add(adv, 2);
        if (lat == 1)
            advAt1 = adv;
        if (lat == 100)
            advAt100 = adv;
    }
    t.print();
    std::printf("\nfujitsu advantage over mth2: %.2f%% at latency 1 "
                "(paper: ~3%%), %.2f%% at latency 100 (paper: <0.1%% — "
                "the curves converge as scalar code leaves the "
                "critical path). mth3/mth4 outperform both.\n",
                advAt1, advAt100);
    return 0;
}
