/**
 * @file
 * Figure 12: the Fujitsu VP2000-style dual-scalar machine (two full
 * decode/scalar units sharing the vector facility, up to 2 dispatches
 * per cycle) versus pure 2-context multithreading, with the 3- and
 * 4-context machines for reference, across memory latencies.
 */

#include "bench/bench_util.hh"
#include "src/common/table.hh"
#include "src/driver/experiments.hh"

int
main()
{
    using namespace mtv;
    const double scale = benchScale();
    benchBanner("Figure 12 - dual scalar units vs multithreading",
                "Espasa & Valero, HPCA-3 1997, Figure 12", scale);

    const auto &jobs = jobQueueOrder();
    const auto &lats = sweepLatencies();

    // Four machines per latency: mth2, fujitsu, mth3, mth4.
    const std::vector<MachineParams> machines = {
        MachineParams::multithreaded(2),
        MachineParams::fujitsuDualScalar(),
        MachineParams::multithreaded(3),
        MachineParams::multithreaded(4),
    };
    SweepBuilder sweep(scale);
    for (const int lat : lats) {
        for (MachineParams p : machines) {
            p.memLatency = lat;
            sweep.addJobQueue(jobs, p);
        }
    }

    ExperimentEngine engine = benchEngine();
    const std::vector<RunResult> results = engine.runAll(sweep.specs());

    Table t({"latency", "mth2 (k)", "fujitsu (k)", "mth3 (k)",
             "mth4 (k)", "fuj advantage %"});
    double advAt1 = 0;
    double advAt100 = 0;
    size_t next = 0;
    for (const int lat : lats) {
        const double mth2 =
            static_cast<double>(results[next++].stats.cycles);
        const double fuj =
            static_cast<double>(results[next++].stats.cycles);
        const double mth3 =
            static_cast<double>(results[next++].stats.cycles);
        const double mth4 =
            static_cast<double>(results[next++].stats.cycles);
        const double adv = 100.0 * (mth2 / fuj - 1.0);
        t.row()
            .add(lat)
            .add(mth2 / 1e3, 1)
            .add(fuj / 1e3, 1)
            .add(mth3 / 1e3, 1)
            .add(mth4 / 1e3, 1)
            .add(adv, 2);
        if (lat == 1)
            advAt1 = adv;
        if (lat == 100)
            advAt100 = adv;
    }
    t.print();
    std::printf("\nfujitsu advantage over mth2: %.2f%% at latency 1 "
                "(paper: ~3%%), %.2f%% at latency 100 (paper: <0.1%% — "
                "the curves converge as scalar code leaves the "
                "critical path). mth3/mth4 outperform both.\n",
                advAt1, advAt100);
    return 0;
}
