/**
 * @file
 * Ablation: cheaper (banked DRAM) memory. The paper argues that a
 * multithreaded vector machine could swap expensive SRAM for slower
 * DRAM parts because multithreading absorbs the slowdown. We enable
 * the banked-memory extension (strided streams that hit few banks
 * deliver below one element/cycle) on top of a higher base latency
 * and measure how much of the damage each context count absorbs.
 */

#include "bench/bench_util.hh"
#include "src/common/strutil.hh"
#include "src/common/table.hh"
#include "src/workload/suite.hh"

int
main()
{
    using namespace mtv;
    const double scale = benchScale();
    benchBanner("Ablation - SRAM vs banked-DRAM memory system",
                "paper sections 7/10 cost argument", scale);

    const auto &jobs = jobQueueOrder();
    auto machineOf = [](int c, bool dram) {
        MachineParams p = MachineParams::multithreaded(c);
        if (dram) {
            p.memLatency = 90;        // slow DRAM parts
            p.bankedMemory = true;
            p.memBanks = 64;
            p.bankBusyCycles = 8;
        } else {
            p.memLatency = 30;        // fast SRAM parts
        }
        return p;
    };

    // Multithreaded rows are one job-queue spec each; the c == 1
    // baseline is the job list run sequentially on the reference
    // machine, served by the engine's cache-backed helper.
    const std::vector<int> mthContexts = {2, 3, 4};
    SweepBuilder sweep(scale);
    for (const int c : mthContexts)
        for (const bool dram : {false, true})
            sweep.addJobQueue(jobs, machineOf(c, dram));

    ExperimentEngine engine = benchEngine();
    const std::vector<RunResult> results = engine.runAll(sweep.specs());

    Table t({"machine", "SRAM lat=30 (k)", "DRAM lat=90 banked (k)",
             "DRAM penalty"});
    auto addRow = [&t](const std::string &name, double sram,
                       double dram) {
        t.row()
            .add(name)
            .add(sram / 1e3, 1)
            .add(dram / 1e3, 1)
            .add(dram / sram, 3);
    };
    addRow("baseline",
           static_cast<double>(engine.sequentialReferenceCycles(
               jobs, machineOf(1, false), scale)),
           static_cast<double>(engine.sequentialReferenceCycles(
               jobs, machineOf(1, true), scale)));
    size_t next = 0;
    for (const int c : mthContexts) {
        const double sram =
            static_cast<double>(results[next++].stats.cycles);
        const double dram =
            static_cast<double>(results[next++].stats.cycles);
        addRow(format("mth%d", c), sram, dram);
    }
    t.print();
    std::printf("\nexpectation: the DRAM penalty shrinks as contexts "
                "are added — supporting the paper's claim that the "
                "memory system (the dominant machine cost) can be "
                "built from slower parts.\n");
    return 0;
}
