/**
 * @file
 * Ablation: cheaper (banked DRAM) memory. The paper argues that a
 * multithreaded vector machine could swap expensive SRAM for slower
 * DRAM parts because multithreading absorbs the slowdown. We enable
 * the banked-memory extension (strided streams that hit few banks
 * deliver below one element/cycle) on top of a higher base latency
 * and measure how much of the damage each context count absorbs.
 */

#include "bench/bench_util.hh"
#include "src/common/strutil.hh"
#include "src/common/table.hh"
#include "src/driver/experiments.hh"

int
main()
{
    using namespace mtv;
    const double scale = benchScale();
    benchBanner("Ablation - SRAM vs banked-DRAM memory system",
                "paper sections 7/10 cost argument", scale);

    Runner runner(scale);
    const auto &jobs = jobQueueOrder();

    auto timeOf = [&](int c, bool dram) {
        MachineParams p = MachineParams::multithreaded(c);
        if (dram) {
            p.memLatency = 90;        // slow DRAM parts
            p.bankedMemory = true;
            p.memBanks = 64;
            p.bankBusyCycles = 8;
        } else {
            p.memLatency = 30;        // fast SRAM parts
        }
        if (c == 1)
            return static_cast<double>(
                runner.sequentialReferenceTime(jobs, p));
        return static_cast<double>(runner.runJobQueue(jobs, p).cycles);
    };

    Table t({"machine", "SRAM lat=30 (k)", "DRAM lat=90 banked (k)",
             "DRAM penalty"});
    for (const int c : {1, 2, 3, 4}) {
        const double sram = timeOf(c, false);
        const double dram = timeOf(c, true);
        t.row()
            .add(c == 1 ? std::string("baseline") : format("mth%d", c))
            .add(sram / 1e3, 1)
            .add(dram / 1e3, 1)
            .add(dram / sram, 3);
    }
    t.print();
    std::printf("\nexpectation: the DRAM penalty shrinks as contexts "
                "are added — supporting the paper's claim that the "
                "memory system (the dominant machine cost) can be "
                "built from slower parts.\n");
    return 0;
}
