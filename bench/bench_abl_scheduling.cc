/**
 * @file
 * Ablation: thread scheduling policies. The paper chooses
 * run-until-block with unfair lowest-numbered selection to maximize
 * chaining and protect thread 0; section 10 lists policy tuning as
 * future work. This bench compares it against naive every-cycle
 * round-robin and a fair LRU variant.
 */

#include "bench/bench_util.hh"
#include "src/common/table.hh"
#include "src/workload/suite.hh"

int
main()
{
    using namespace mtv;
    const double scale = benchScale();
    benchBanner("Ablation - thread scheduling policy",
                "paper sections 2/3 (policy rationale) and 10 "
                "(future work)",
                scale);

    const auto &jobs = jobQueueOrder();
    const std::vector<int> contexts = {2, 3, 4};
    const std::vector<SchedPolicy> policies = {
        SchedPolicy::UnfairLowest, SchedPolicy::RoundRobin,
        SchedPolicy::FairLru};

    SweepBuilder sweep(scale);
    for (const int c : contexts) {
        for (const auto policy : policies) {
            MachineParams p = MachineParams::multithreaded(c);
            p.sched = policy;
            sweep.addJobQueue(jobs, p);
        }
    }

    ExperimentEngine engine = benchEngine();
    const std::vector<RunResult> results = engine.runAll(sweep.specs());

    Table t({"contexts", "policy", "cycles (k)", "mem-port", "VOPC"});
    size_t next = 0;
    for (const int c : contexts) {
        for (const auto policy : policies) {
            const SimStats &s = results[next++].stats;
            t.row()
                .add(c)
                .add(schedPolicyName(policy))
                .add(static_cast<double>(s.cycles) / 1e3, 1)
                .add(s.memPortOccupation(), 3)
                .add(s.vopc(), 3);
        }
    }
    t.print();
    std::printf("\nreading: unfair-lowest optimizes thread-0 latency "
                "and chaining, not aggregate throughput; on a "
                "job-queue workload every-cycle round-robin can edge "
                "it by load-balancing bus access. The paper picks "
                "unfair-lowest so at least one thread never suffers "
                "(its section 3 rationale) and leaves policy tuning "
                "as future work.\n");
    return 0;
}
