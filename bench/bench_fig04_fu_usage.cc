/**
 * @file
 * Figure 4: execution time of each benchmark on the reference
 * architecture, broken into the eight (FU2, FU1, LD) joint states,
 * for memory latencies 1, 20, 70 and 100. The program x latency grid
 * is declared as one RunSpec batch and executed in parallel.
 */

#include "bench/bench_util.hh"
#include "src/common/strutil.hh"
#include "src/common/table.hh"
#include "src/driver/experiments.hh"

int
main()
{
    using namespace mtv;
    const double scale = benchScale();
    benchBanner("Figure 4 - functional unit usage, reference machine",
                "Espasa & Valero, HPCA-3 1997, Figure 4", scale);

    const auto &lats = figure4Latencies();
    SweepBuilder sweep(scale);
    for (const auto &spec : benchmarkSuite()) {
        for (const int lat : lats) {
            MachineParams p = MachineParams::reference();
            p.memLatency = lat;
            sweep.addReference(spec.name, p);
        }
    }

    ExperimentEngine engine = benchEngine();
    const std::vector<RunResult> results = engine.runAll(sweep.specs());

    size_t next = 0;
    for (const auto &spec : benchmarkSuite()) {
        std::printf("%s:\n", spec.name.c_str());
        const RunResult *row = &results[next];
        next += lats.size();

        std::vector<std::string> headers = {"state"};
        for (const int lat : lats)
            headers.push_back(format("lat %d", lat));
        Table t(headers);
        // Rows in the paper's legend order, cycles in thousands.
        for (int state = 0; state < numFuStates; ++state) {
            t.row().add(fuStateName(state));
            for (size_t l = 0; l < lats.size(); ++l) {
                t.add(static_cast<double>(
                          row[l].stats.stateHist[state]) /
                          1e3,
                      1);
            }
        }
        t.row().add("total cycles (k)");
        for (size_t l = 0; l < lats.size(); ++l)
            t.add(static_cast<double>(row[l].stats.cycles) / 1e3, 1);
        t.print();
        std::printf("\n");
    }
    return 0;
}
