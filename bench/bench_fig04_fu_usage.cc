/**
 * @file
 * Figure 4: execution time of each benchmark on the reference
 * architecture, broken into the eight (FU2, FU1, LD) joint states,
 * for memory latencies 1, 20, 70 and 100.
 */

#include "bench/bench_util.hh"
#include "src/common/strutil.hh"
#include "src/common/table.hh"
#include "src/driver/experiments.hh"
#include "src/driver/runner.hh"

int
main()
{
    using namespace mtv;
    const double scale = benchScale();
    benchBanner("Figure 4 - functional unit usage, reference machine",
                "Espasa & Valero, HPCA-3 1997, Figure 4", scale);

    Runner runner(scale);
    for (const auto &spec : benchmarkSuite()) {
        std::printf("%s:\n", spec.name.c_str());
        std::vector<std::string> headers = {"state"};
        for (const int lat : figure4Latencies())
            headers.push_back(format("lat %d", lat));
        Table t(headers);
        // Rows in the paper's legend order, cycles in thousands.
        for (int state = 0; state < numFuStates; ++state) {
            t.row().add(fuStateName(state));
            for (const int lat : figure4Latencies()) {
                MachineParams p = MachineParams::reference();
                p.memLatency = lat;
                const SimStats &s = runner.referenceRun(spec.name, p);
                t.add(static_cast<double>(s.stateHist[state]) / 1e3, 1);
            }
        }
        t.row().add("total cycles (k)");
        for (const int lat : figure4Latencies()) {
            MachineParams p = MachineParams::reference();
            p.memLatency = lat;
            t.add(static_cast<double>(
                      runner.referenceRun(spec.name, p).cycles) /
                      1e3,
                  1);
        }
        t.print();
        std::printf("\n");
    }
    return 0;
}
