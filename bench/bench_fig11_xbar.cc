/**
 * @file
 * Figure 11: slowdown from increasing the vector register file
 * read/write crossbar latency from 2 to 3 cycles (the cost of
 * replicating the register file for 4 contexts), across memory
 * latencies. The paper finds it under 1.009 everywhere.
 */

#include "bench/bench_util.hh"
#include "src/common/strutil.hh"
#include "src/common/table.hh"
#include "src/driver/experiments.hh"

int
main()
{
    using namespace mtv;
    const double scale = benchScale();
    benchBanner("Figure 11 - register-crossbar latency slowdown",
                "Espasa & Valero, HPCA-3 1997, Figure 11", scale);

    Runner runner(scale);
    const auto &jobs = jobQueueOrder();
    Table t({"latency", "2 threads", "3 threads", "4 threads"});
    double worst = 0;
    for (const int lat : sweepLatencies()) {
        t.row().add(lat);
        for (const int c : {2, 3, 4}) {
            MachineParams fast = MachineParams::multithreaded(c);
            fast.memLatency = lat;
            MachineParams slow = fast;
            slow.readXbar = 3;
            slow.writeXbar = 3;
            const double slowdown =
                static_cast<double>(
                    runner.runJobQueue(jobs, slow).cycles) /
                static_cast<double>(
                    runner.runJobQueue(jobs, fast).cycles);
            t.add(slowdown, 4);
            worst = std::max(worst, slowdown);
        }
    }
    t.print();
    std::printf("\nworst slowdown: %.4f (paper: < 1.009 — vector "
                "granularity, multithreading and chaining all mask "
                "the extra cycle)\n",
                worst);
    return 0;
}
