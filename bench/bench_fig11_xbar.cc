/**
 * @file
 * Figure 11: slowdown from increasing the vector register file
 * read/write crossbar latency from 2 to 3 cycles (the cost of
 * replicating the register file for 4 contexts), across memory
 * latencies. The paper finds it under 1.009 everywhere.
 */

#include <algorithm>

#include "bench/bench_util.hh"
#include "src/common/table.hh"
#include "src/driver/experiments.hh"

int
main()
{
    using namespace mtv;
    const double scale = benchScale();
    benchBanner("Figure 11 - register-crossbar latency slowdown",
                "Espasa & Valero, HPCA-3 1997, Figure 11", scale);

    const auto &jobs = jobQueueOrder();
    const auto &lats = sweepLatencies();
    const std::vector<int> contexts = {2, 3, 4};

    // Fast (xbar 2/2) and slow (xbar 3/3) machine per point.
    SweepBuilder sweep(scale);
    for (const int lat : lats) {
        for (const int c : contexts) {
            MachineParams fast = MachineParams::multithreaded(c);
            fast.memLatency = lat;
            MachineParams slow = fast;
            slow.readXbar = 3;
            slow.writeXbar = 3;
            sweep.addJobQueue(jobs, fast).addJobQueue(jobs, slow);
        }
    }

    ExperimentEngine engine = benchEngine();
    const std::vector<RunResult> results = engine.runAll(sweep.specs());

    Table t({"latency", "2 threads", "3 threads", "4 threads"});
    double worst = 0;
    size_t next = 0;
    for (const int lat : lats) {
        t.row().add(lat);
        for (size_t c = 0; c < contexts.size(); ++c) {
            const double fast =
                static_cast<double>(results[next].stats.cycles);
            const double slow =
                static_cast<double>(results[next + 1].stats.cycles);
            next += 2;
            const double slowdown = slow / fast;
            t.add(slowdown, 4);
            worst = std::max(worst, slowdown);
        }
    }
    t.print();
    std::printf("\nworst slowdown: %.4f (paper: < 1.009 — vector "
                "granularity, multithreading and chaining all mask "
                "the extra cycle)\n",
                worst);
    return 0;
}
