/**
 * @file
 * Ablation: decode width. The paper's machine looks at exactly one
 * thread per cycle; section 10 proposes simultaneous dispatch from
 * several threads as future work (and expects it to matter for
 * multi-port Cray-style memories). This bench quantifies what a
 * 2-wide decoder buys on the single-port machine.
 */

#include "bench/bench_util.hh"
#include "src/common/table.hh"
#include "src/workload/suite.hh"

int
main()
{
    using namespace mtv;
    const double scale = benchScale();
    benchBanner("Ablation - decode width (simultaneous multi-thread "
                "dispatch)",
                "paper section 10 future work", scale);

    const auto &jobs = jobQueueOrder();
    const std::vector<int> contexts = {2, 3, 4};
    SweepBuilder sweep(scale);
    for (const int c : contexts) {
        MachineParams w1 = MachineParams::multithreaded(c);
        MachineParams w2 = w1;
        w2.decodeWidth = 2;
        sweep.addJobQueue(jobs, w1).addJobQueue(jobs, w2);
    }

    ExperimentEngine engine = benchEngine();
    const std::vector<RunResult> results = engine.runAll(sweep.specs());

    Table t({"contexts", "width 1 (k)", "width 2 (k)", "speedup",
             "occ w1", "occ w2"});
    size_t next = 0;
    for (const int c : contexts) {
        const SimStats &s1 = results[next].stats;
        const SimStats &s2 = results[next + 1].stats;
        next += 2;
        t.row()
            .add(c)
            .add(static_cast<double>(s1.cycles) / 1e3, 1)
            .add(static_cast<double>(s2.cycles) / 1e3, 1)
            .add(static_cast<double>(s1.cycles) / s2.cycles, 3)
            .add(s1.memPortOccupation(), 3)
            .add(s2.memPortOccupation(), 3);
    }
    t.print();
    std::printf("\nexpectation: modest gains — with one memory port "
                "the decode unit is rarely the bottleneck (which is "
                "why the paper kept the simple single decoder).\n");
    return 0;
}
