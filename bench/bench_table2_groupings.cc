/**
 * @file
 * Table 2: the randomly-selected companion programs used to form the
 * 2-, 3- and 4-thread groupings of the section 4.1 methodology (our
 * reconstruction; see DESIGN.md).
 */

#include "bench/bench_util.hh"
#include "src/common/table.hh"
#include "src/driver/experiments.hh"

int
main()
{
    using namespace mtv;
    benchBanner("Table 2 - grouping companion programs",
                "Espasa & Valero, HPCA-3 1997, Table 2", 1.0);

    Table t({"num threads", "companion programs"});
    auto join = [](const std::vector<std::string> &names) {
        std::string out;
        for (const auto &n : names) {
            if (!out.empty())
                out += ", ";
            out += n + " (" + findProgram(n).abbrev + ")";
        }
        return out;
    };
    t.row().add("2").add(join(groupingColumn2()));
    t.row().add("3").add(join(groupingColumn3()));
    t.row().add("4").add(join(groupingColumn4()));
    t.print();

    std::printf("\nper measured program X this yields:\n");
    std::printf("  %zu two-thread runs, %zu three-thread runs, "
                "%zu four-thread runs\n",
                groupingsFor("swm256", 2).size(),
                groupingsFor("swm256", 3).size(),
                groupingsFor("swm256", 4).size());
    return 0;
}
