/**
 * @file
 * Shared helpers for the figure/table reproduction benches.
 */

#ifndef MTV_BENCH_BENCH_UTIL_HH
#define MTV_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <cstdlib>
#include <string>

#include "src/workload/program.hh"

namespace mtv
{

/**
 * Workload scale for a bench: the default, overridable with the
 * MTV_SCALE environment variable (e.g. MTV_SCALE=1e-5 for a quick
 * smoke run, MTV_SCALE=1e-3 for a higher-fidelity one).
 */
inline double
benchScale()
{
    if (const char *env = std::getenv("MTV_SCALE")) {
        const double v = std::atof(env);
        if (v > 0)
            return v;
        std::fprintf(stderr, "warn: ignoring invalid MTV_SCALE '%s'\n",
                     env);
    }
    return workloadDefaultScale;
}

/** Uniform banner so EXPERIMENTS.md can quote outputs verbatim. */
inline void
benchBanner(const char *experiment, const char *paperRef,
            double scale)
{
    std::printf("== %s ==\n", experiment);
    std::printf("reproduces: %s\n", paperRef);
    std::printf("workload scale: %g of the paper's dynamic "
                "instruction counts\n\n",
                scale);
}

} // namespace mtv

#endif // MTV_BENCH_BENCH_UTIL_HH
