/**
 * @file
 * Shared helpers for the figure/table reproduction benches.
 */

#ifndef MTV_BENCH_BENCH_UTIL_HH
#define MTV_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <cstdlib>
#include <memory>

#include "src/api/engine.hh"
#include "src/api/sweep.hh"
#include "src/store/result_store.hh"
#include "src/workload/program.hh"
#include "src/workload/suite.hh"

namespace mtv
{

/**
 * Workload scale for a bench: the default, overridable with the
 * MTV_SCALE environment variable (e.g. MTV_SCALE=1e-5 for a quick
 * smoke run, MTV_SCALE=1e-3 for a higher-fidelity one).
 */
inline double
benchScale()
{
    if (const char *env = std::getenv("MTV_SCALE")) {
        const double v = std::atof(env);
        if (v > 0)
            return v;
        std::fprintf(stderr, "warn: ignoring invalid MTV_SCALE '%s'\n",
                     env);
    }
    return workloadDefaultScale;
}

/**
 * Engine worker threads for a bench: every hardware thread by
 * default, overridable with MTV_WORKERS (e.g. MTV_WORKERS=1 to
 * measure the serial baseline of a sweep).
 */
inline int
benchWorkers()
{
    if (const char *env = std::getenv("MTV_WORKERS")) {
        const int v = std::atoi(env);
        if (v > 0)
            return v;
        std::fprintf(stderr,
                     "warn: ignoring invalid MTV_WORKERS '%s'\n", env);
    }
    return 0;  // engine default: one per hardware thread
}

/**
 * Simulation kernel for a bench: the event-driven kernel by default,
 * overridable with MTV_KERNEL=stepped|event|batched. All three
 * kernels produce bit-identical figures (the CI kernel-parity job
 * diffs a bench's output under each), so this knob exists for A/B
 * validation and speedup measurement only.
 */
inline SimKernel
benchKernel()
{
    if (const char *env = std::getenv("MTV_KERNEL")) {
        const std::string v = env;
        if (v == "stepped")
            return SimKernel::Stepped;
        if (v == "event")
            return SimKernel::Event;
        if (v == "batched")
            return SimKernel::Batched;
        if (!v.empty()) {
            std::fprintf(stderr,
                         "warn: ignoring invalid MTV_KERNEL '%s' "
                         "(want stepped|event|batched)\n",
                         env);
        }
    }
    return SimKernel::Event;
}

/**
 * Engine configured from the environment: MTV_WORKERS caps the pool,
 * MTV_KERNEL selects the simulation kernel, and MTV_STORE=<dir>
 * attaches the persistent result store — point consecutive bench
 * invocations at the same directory and every already-simulated
 * point is served from disk (the warm-store fast path; the engine
 * summary line shows the store hits).
 */
inline ExperimentEngine
benchEngine()
{
    EngineOptions options;
    options.workers = benchWorkers();
    options.kernel = benchKernel();
    if (const char *dir = std::getenv("MTV_STORE")) {
        if (*dir)
            options.backend = std::make_shared<ResultStore>(dir);
    }
    return ExperimentEngine(options);
}

/** Uniform banner so EXPERIMENTS.md can quote outputs verbatim. */
inline void
benchBanner(const char *experiment, const char *paperRef,
            double scale)
{
    std::printf("== %s ==\n", experiment);
    std::printf("reproduces: %s\n", paperRef);
    std::printf("workload scale: %g of the paper's dynamic "
                "instruction counts\n\n",
                scale);
}

/** One-line engine utilization summary for a finished sweep. */
inline void
benchEngineSummary(const ExperimentEngine &engine, double seconds)
{
    std::printf("\n[engine: %d worker%s, %zu cached runs, "
                "%llu hits / %llu misses / %llu uncacheable, "
                "%llu store-served, %.2fs wall]\n",
                engine.workers(), engine.workers() == 1 ? "" : "s",
                engine.cacheSize(),
                static_cast<unsigned long long>(engine.cacheHits()),
                static_cast<unsigned long long>(engine.cacheMisses()),
                static_cast<unsigned long long>(
                    engine.uncachedRuns()),
                static_cast<unsigned long long>(engine.storeHits()),
                seconds);
}

} // namespace mtv

#endif // MTV_BENCH_BENCH_UTIL_HH
