/**
 * @file
 * Example: how memory latency affects a single program on the
 * reference machine versus multithreaded machines — the paper's
 * headline latency-tolerance argument in miniature. The whole study
 * (6 latencies x 3 machines) is declared as one spec batch and
 * executed across the engine's workers.
 *
 * Usage: latency_study [program] [scale]
 *   program  suite program name or abbreviation (default: tomcatv)
 *   scale    workload scale (default: 2e-4)
 */

#include <cstdio>
#include <cstdlib>

#include "src/api/engine.hh"
#include "src/api/sweep.hh"
#include "src/common/table.hh"
#include "src/workload/suite.hh"

int
main(int argc, char **argv)
{
    using namespace mtv;
    const std::string program = argc > 1 ? argv[1] : "tomcatv";
    const double scale =
        argc > 2 ? std::atof(argv[2]) : workloadDefaultScale;

    const ProgramSpec &spec = findProgram(program);
    std::printf("latency study: %s (%s, %.1f%% vectorized, "
                "avg VL %.0f)\n\n",
                spec.name.c_str(), spec.suite.c_str(), spec.percentVect,
                spec.avgVectorLength);

    // Pair the program with itself (the paper groups HYDRO2D with
    // itself too) so the second context has identical behaviour.
    const std::vector<int> lats = {1, 10, 25, 50, 75, 100};
    SweepBuilder sweep(scale);
    for (const int lat : lats) {
        MachineParams ref = MachineParams::reference();
        ref.memLatency = lat;
        sweep.addReference(spec.name, ref);

        MachineParams m2 = MachineParams::multithreaded(2);
        m2.memLatency = lat;
        sweep.addGroup({spec.name, spec.name}, m2);

        MachineParams m4 = MachineParams::multithreaded(4);
        m4.memLatency = lat;
        sweep.addGroup(
            {spec.name, spec.name, spec.name, spec.name}, m4);
    }

    ExperimentEngine engine;
    const std::vector<RunResult> results = engine.runAll(sweep.specs());

    Table t({"latency", "ref cycles", "ref occ", "mth2 speedup",
             "mth2 occ", "mth4 speedup", "mth4 occ"});
    size_t next = 0;
    for (const int lat : lats) {
        const RunResult &solo = results[next++];
        const RunResult &g2 = results[next++];
        const RunResult &g4 = results[next++];
        t.row()
            .add(lat)
            .add(solo.stats.cycles)
            .add(solo.stats.memPortOccupation(), 3)
            .add(g2.speedup, 3)
            .add(g2.mthOccupation, 3)
            .add(g4.speedup, 3)
            .add(g4.mthOccupation, 3);
    }
    t.print();
    std::printf("\nthe reference machine degrades almost linearly "
                "with latency; the multithreaded speedup grows with "
                "latency because idle memory-port cycles multiply.\n");
    return 0;
}
