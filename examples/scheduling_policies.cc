/**
 * @file
 * Example: the fairness/throughput trade-off between thread
 * scheduling policies. The paper's unfair run-until-block policy
 * exists so thread 0 barely notices its companions; this example
 * measures exactly that — thread 0's slowdown versus its solo run —
 * for each policy, alongside aggregate throughput.
 */

#include <cstdio>
#include <cstdlib>

#include "src/api/engine.hh"
#include "src/common/table.hh"
#include "src/workload/suite.hh"

int
main(int argc, char **argv)
{
    using namespace mtv;
    const double scale =
        argc > 1 ? std::atof(argv[1]) : workloadDefaultScale;
    ExperimentEngine engine;

    // Thread 0 runs arc2d; three latency-hungry companions compete.
    const std::vector<std::string> group = {"arc2d", "tomcatv", "trfd",
                                            "dyfesm"};
    const std::vector<SchedPolicy> policies = {
        SchedPolicy::UnfairLowest, SchedPolicy::FairLru,
        SchedPolicy::RoundRobin};

    std::vector<RunSpec> specs;
    for (const auto policy : policies) {
        MachineParams p = MachineParams::multithreaded(4);
        p.sched = policy;
        specs.push_back(RunSpec::group(group, p, scale));
    }
    const std::vector<RunResult> results = engine.runAll(specs);

    const uint64_t solo =
        engine
            .statsFor(RunSpec::reference(
                "arc2d", MachineParams::reference(), scale))
            .cycles;
    std::printf("thread 0 = arc2d (solo: %llu cycles); companions: "
                "tomcatv, trfd, dyfesm\n\n",
                static_cast<unsigned long long>(solo));

    Table t({"policy", "thread-0 slowdown", "speedup (all work)",
             "mem-port"});
    for (size_t i = 0; i < policies.size(); ++i) {
        const RunResult &r = results[i];
        t.row()
            .add(schedPolicyName(policies[i]))
            .add(static_cast<double>(r.stats.cycles) / solo, 3)
            .add(r.speedup, 3)
            .add(r.mthOccupation, 3);
    }
    t.print();
    std::printf("\nthread-0 slowdown is the group completion time of "
                "thread 0's single run over its solo time. The unfair "
                "policy keeps it lowest — the property the paper "
                "designed for.\n");
    return 0;
}
