/**
 * @file
 * Example/tool: full command-line simulator driver. Describes the
 * machine with a key=value config file (see MachineParams::fromConfig
 * for the key list), builds a declarative RunSpec for any of the
 * paper's experiment modes, and executes it with ExperimentEngine.
 *
 * Usage:
 *   mtv_sim [options] <mode> <program...>
 *     modes:
 *       single <prog>            one program, one context
 *       group  <p0> <p1...>      section 4.1 run (p0 = thread 0),
 *                                contexts = number of programs
 *       queue  <p0> <p1...>      section 7 job queue
 *     options:
 *       --config <file>   machine description (default: reference)
 *       --set k=v         override one config key (repeatable)
 *       --scale <f>       workload scale (default 2e-4)
 *       --spec <text>     run a serialized RunSpec (overrides mode)
 *       --verbose         per-thread statistics
 *
 * Example:
 *   mtv_sim --set contexts=3 --set mem_latency=80 queue tf sw su
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "src/api/engine.hh"
#include "src/common/config.hh"
#include "src/common/logging.hh"
#include "src/common/strutil.hh"
#include "src/common/table.hh"
#include "src/workload/suite.hh"

namespace
{

int
usage()
{
    std::fprintf(stderr,
                 "usage: mtv_sim [--config file] [--set k=v]... "
                 "[--scale f] [--spec text] [--verbose] "
                 "single|group|queue <program...>\n");
    return 2;
}

void
printStats(const mtv::SimStats &s, bool verbose)
{
    using namespace mtv;
    std::printf("cycles:            %s\n", withCommas(s.cycles).c_str());
    std::printf("instructions:      %s\n",
                withCommas(s.dispatches).c_str());
    std::printf("memory requests:   %s\n",
                withCommas(s.memRequests).c_str());
    std::printf("mem-port occ:      %.3f (%d port%s)\n",
                s.memPortOccupation(), s.memPorts,
                s.memPorts == 1 ? "" : "s");
    std::printf("VOPC:              %.3f\n", s.vopc());
    if (s.decoupledSlips)
        std::printf("decoupled slips:   %s\n",
                    withCommas(s.decoupledSlips).c_str());

    if (!verbose)
        return;
    std::printf("\nfunctional-unit state breakdown:\n");
    for (int i = 0; i < numFuStates; ++i) {
        std::printf("  %s  %s\n", fuStateName(i).c_str(),
                    withCommas(s.stateHist[i]).c_str());
    }
    std::printf("\nper-thread:\n");
    Table t({"ctx", "program", "instrs", "runs", "top block reason"});
    for (size_t c = 0; c < s.threads.size(); ++c) {
        const ThreadStats &ts = s.threads[c];
        size_t top = 1;
        for (size_t r = 1; r < ts.blocked.size(); ++r) {
            if (ts.blocked[r] > ts.blocked[top])
                top = r;
        }
        t.row()
            .add(static_cast<uint64_t>(c))
            .add(ts.program)
            .add(ts.instructions)
            .add(ts.runsCompleted)
            .add(format("%s (%s)",
                        blockReasonName(
                            static_cast<BlockReason>(top)),
                        withCommas(ts.blocked[top]).c_str()));
    }
    t.print();
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace mtv;
    Config config;
    double scale = workloadDefaultScale;
    bool verbose = false;
    bool machineOptionsGiven = false;
    bool scaleGiven = false;
    std::string specText;
    int arg = 1;
    while (arg < argc && startsWith(argv[arg], "--")) {
        const std::string opt = argv[arg];
        if (opt == "--config" && arg + 1 < argc) {
            config = Config::fromFile(argv[++arg]);
            machineOptionsGiven = true;
        } else if (opt == "--set" && arg + 1 < argc) {
            const auto kv = split(argv[++arg], '=');
            if (kv.size() != 2)
                return usage();
            config.set(trim(kv[0]), trim(kv[1]));
            machineOptionsGiven = true;
        } else if (opt == "--scale" && arg + 1 < argc) {
            scale = std::atof(argv[++arg]);
            scaleGiven = true;
        } else if (opt == "--spec" && arg + 1 < argc) {
            specText = argv[++arg];
        } else if (opt == "--verbose") {
            verbose = true;
        } else {
            return usage();
        }
        ++arg;
    }

    // One worker suffices: this tool only ever runs a single spec
    // (run() executes on the calling thread; the pool serves batches).
    ExperimentEngine engine(EngineOptions{1});

    if (!specText.empty()) {
        // Serialized-spec mode: the canonical string is the whole
        // experiment description.
        if (arg < argc)
            fatal("--spec cannot be combined with a mode/program "
                  "list (got '%s')",
                  argv[arg]);
        if (machineOptionsGiven)
            warn("--config/--set are ignored with --spec (the spec "
                 "carries its own machine description)");
        if (scaleGiven)
            warn("--scale is ignored with --spec (the spec carries "
                 "its own scale)");
        const RunSpec spec = RunSpec::parse(specText);
        std::printf("machine: %s\n", spec.params.describe().c_str());
        const RunResult r = engine.run(spec);
        printStats(r.stats, verbose);
        if (spec.mode == SpecMode::Group)
            std::printf("speedup vs reference: %.3f\n", r.speedup);
        return 0;
    }

    if (arg >= argc)
        return usage();
    const std::string mode = argv[arg++];
    std::vector<std::string> programs;
    for (; arg < argc; ++arg)
        programs.push_back(argv[arg]);
    if (programs.empty())
        return usage();

    MachineParams params = MachineParams::fromConfig(config);
    for (const auto &key : config.unusedKeys())
        warn("unused config key '%s'", key.c_str());

    RunSpec spec;
    if (mode == "single")
        spec = RunSpec::single(programs[0], params, scale);
    else if (mode == "group")
        spec = RunSpec::group(programs, params, scale);
    else if (mode == "queue")
        spec = RunSpec::jobQueue(programs, params, scale);
    else
        return usage();

    std::printf("machine: %s\n", spec.params.describe().c_str());
    std::printf("spec:    %s\n", spec.canonical().c_str());
    const RunResult r = engine.run(spec);
    printStats(r.stats, verbose);
    if (spec.mode == SpecMode::Group)
        std::printf("speedup vs reference: %.3f\n", r.speedup);
    return 0;
}
