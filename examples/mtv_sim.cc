/**
 * @file
 * Example/tool: full command-line simulator driver. Describes the
 * machine with a key=value config file (see MachineParams::fromConfig
 * for the key list) and runs any of the paper's experiment modes on
 * any mix of suite programs.
 *
 * Usage:
 *   mtv_sim [options] <mode> <program...>
 *     modes:
 *       single <prog>            one program, one context
 *       group  <p0> <p1...>      section 4.1 run (p0 = thread 0),
 *                                contexts = number of programs
 *       queue  <p0> <p1...>      section 7 job queue
 *     options:
 *       --config <file>   machine description (default: reference)
 *       --set k=v         override one config key (repeatable)
 *       --scale <f>       workload scale (default 2e-4)
 *       --verbose         per-thread statistics
 *
 * Example:
 *   mtv_sim --set contexts=3 --set mem_latency=80 queue tf sw su
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "src/common/config.hh"
#include "src/common/logging.hh"
#include "src/common/strutil.hh"
#include "src/common/table.hh"
#include "src/driver/runner.hh"

namespace
{

int
usage()
{
    std::fprintf(stderr,
                 "usage: mtv_sim [--config file] [--set k=v]... "
                 "[--scale f] [--verbose] single|group|queue "
                 "<program...>\n");
    return 2;
}

void
printStats(const mtv::SimStats &s, bool verbose)
{
    using namespace mtv;
    std::printf("cycles:            %s\n", withCommas(s.cycles).c_str());
    std::printf("instructions:      %s\n",
                withCommas(s.dispatches).c_str());
    std::printf("memory requests:   %s\n",
                withCommas(s.memRequests).c_str());
    std::printf("mem-port occ:      %.3f (%d port%s)\n",
                s.memPortOccupation(), s.memPorts,
                s.memPorts == 1 ? "" : "s");
    std::printf("VOPC:              %.3f\n", s.vopc());
    if (s.decoupledSlips)
        std::printf("decoupled slips:   %s\n",
                    withCommas(s.decoupledSlips).c_str());

    if (!verbose)
        return;
    std::printf("\nfunctional-unit state breakdown:\n");
    for (int i = 0; i < numFuStates; ++i) {
        std::printf("  %s  %s\n", fuStateName(i).c_str(),
                    withCommas(s.stateHist[i]).c_str());
    }
    std::printf("\nper-thread:\n");
    Table t({"ctx", "program", "instrs", "runs", "top block reason"});
    for (size_t c = 0; c < s.threads.size(); ++c) {
        const ThreadStats &ts = s.threads[c];
        size_t top = 1;
        for (size_t r = 1; r < ts.blocked.size(); ++r) {
            if (ts.blocked[r] > ts.blocked[top])
                top = r;
        }
        t.row()
            .add(static_cast<uint64_t>(c))
            .add(ts.program)
            .add(ts.instructions)
            .add(ts.runsCompleted)
            .add(format("%s (%s)",
                        blockReasonName(
                            static_cast<BlockReason>(top)),
                        withCommas(ts.blocked[top]).c_str()));
    }
    t.print();
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace mtv;

    Config config;
    double scale = workloadDefaultScale;
    bool verbose = false;
    int arg = 1;
    while (arg < argc && startsWith(argv[arg], "--")) {
        const std::string opt = argv[arg];
        if (opt == "--config" && arg + 1 < argc) {
            config = Config::fromFile(argv[++arg]);
        } else if (opt == "--set" && arg + 1 < argc) {
            const auto kv = split(argv[++arg], '=');
            if (kv.size() != 2)
                return usage();
            config.set(trim(kv[0]), trim(kv[1]));
        } else if (opt == "--scale" && arg + 1 < argc) {
            scale = std::atof(argv[++arg]);
        } else if (opt == "--verbose") {
            verbose = true;
        } else {
            return usage();
        }
        ++arg;
    }
    if (arg >= argc)
        return usage();
    const std::string mode = argv[arg++];
    std::vector<std::string> programs;
    for (; arg < argc; ++arg)
        programs.push_back(argv[arg]);
    if (programs.empty())
        return usage();

    MachineParams params = MachineParams::fromConfig(config);
    for (const auto &key : config.unusedKeys())
        warn("unused config key '%s'", key.c_str());

    Runner runner(scale);
    std::printf("machine: %s\n", params.describe().c_str());

    if (mode == "single") {
        auto src = runner.instantiate(programs[0]);
        VectorSim sim(params);
        printStats(sim.runSingle(*src), verbose);
        return 0;
    }
    if (mode == "group") {
        params.contexts = static_cast<int>(programs.size());
        const GroupResult r = runner.runGroup(programs, params);
        printStats(r.mth, verbose);
        std::printf("speedup vs reference: %.3f\n", r.speedup);
        return 0;
    }
    if (mode == "queue") {
        const SimStats s = runner.runJobQueue(programs, params);
        printStats(s, verbose);
        return 0;
    }
    return usage();
}
