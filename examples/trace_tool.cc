/**
 * @file
 * Example/tool: command-line trace utility (the Dixie-substitute
 * workflow). Generates suite traces to disk, dumps them as text, and
 * prints Table 3-style statistics for any trace file.
 *
 * Usage:
 *   trace_tool gen  <program> <out.mtv> [scale]   record a suite trace
 *   trace_tool dump <in.mtv> <out.mtvt>           binary -> text
 *   trace_tool load <in.mtvt> <out.mtv>           text -> binary
 *   trace_tool stat <in.mtv>                      operation counts
 *   trace_tool run  <in.mtv> [latency] [contexts] simulate a trace
 *
 * Binary traces are read in streaming mode (bounded memory), so
 * multi-GB traces dump/stat/run fine.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "src/core/sim.hh"
#include "src/trace/analyzer.hh"
#include "src/trace/trace_file.hh"
#include "src/workload/suite.hh"

namespace
{

int
usage()
{
    std::fprintf(stderr,
                 "usage:\n"
                 "  trace_tool gen  <program> <out.mtv> [scale]\n"
                 "  trace_tool dump <in.mtv> <out.mtvt>\n"
                 "  trace_tool load <in.mtvt> <out.mtv>\n"
                 "  trace_tool stat <in.mtv>\n"
                 "  trace_tool run  <in.mtv> [latency] [contexts]\n");
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace mtv;
    if (argc < 3)
        return usage();
    const std::string cmd = argv[1];

    if (cmd == "gen") {
        if (argc < 4)
            return usage();
        const double scale =
            argc > 4 ? std::atof(argv[4]) : workloadDefaultScale;
        auto program = makeProgram(argv[2], scale);
        const uint64_t n = writeTrace(*program, argv[3]);
        std::printf("wrote %llu records to %s\n",
                    static_cast<unsigned long long>(n), argv[3]);
        return 0;
    }

    if (cmd == "dump") {
        if (argc < 4)
            return usage();
        // Streamed: dumping never needs the whole trace in memory.
        TraceReader reader(argv[2], TraceReadMode::Streaming);
        const uint64_t n = writeTextTrace(reader, argv[3]);
        std::printf("dumped %llu records to %s\n",
                    static_cast<unsigned long long>(n), argv[3]);
        return 0;
    }

    if (cmd == "load") {
        if (argc < 4)
            return usage();
        TextTraceReader reader(argv[2]);
        const uint64_t n = writeTrace(reader, argv[3]);
        std::printf("assembled %llu records from %s into %s\n",
                    static_cast<unsigned long long>(n), argv[2],
                    argv[3]);
        return 0;
    }

    if (cmd == "stat") {
        TraceReader reader(argv[2], TraceReadMode::Streaming);
        const TraceStats stats = analyzeSource(reader);
        std::printf("program:              %s\n", reader.name().c_str());
        std::printf("scalar instructions:  %llu\n",
                    static_cast<unsigned long long>(
                        stats.scalarInstructions));
        std::printf("vector instructions:  %llu\n",
                    static_cast<unsigned long long>(
                        stats.vectorInstructions));
        std::printf("vector operations:    %llu\n",
                    static_cast<unsigned long long>(
                        stats.vectorOperations));
        std::printf("memory requests:      %llu\n",
                    static_cast<unsigned long long>(
                        stats.memoryRequests));
        std::printf("%% vectorization:      %.2f\n",
                    stats.percentVectorization());
        std::printf("average vector length: %.1f\n",
                    stats.averageVectorLength());
        const IdealBound ideal = idealBound(stats);
        std::printf("IDEAL cycle bound:    %llu (binds on %s)\n",
                    static_cast<unsigned long long>(ideal.bound),
                    ideal.binding());
        return 0;
    }

    if (cmd == "run") {
        TraceReader reader(argv[2], TraceReadMode::Streaming);
        MachineParams p = MachineParams::reference();
        if (argc > 3)
            p.memLatency = std::atoi(argv[3]);
        if (argc > 4)
            p.contexts = std::atoi(argv[4]);
        VectorSim sim(p);
        // A single trace occupies context 0; extra contexts stay idle
        // (use the suite benches for multi-programmed runs).
        const SimStats s = sim.runSingle(reader);
        std::printf("machine:   %s\n", p.describe().c_str());
        std::printf("cycles:    %llu\n",
                    static_cast<unsigned long long>(s.cycles));
        std::printf("mem-port:  %.3f\n", s.memPortOccupation());
        std::printf("VOPC:      %.3f\n", s.vopc());
        return 0;
    }

    return usage();
}
