/**
 * @file
 * Quickstart: the declarative experiment API in 40 lines.
 *
 * 1. Describe experiment points as RunSpec values (machine + programs
 *    + run methodology + scale).
 * 2. Hand a batch to ExperimentEngine::runAll — it fans the specs out
 *    over a worker pool (one simulator per in-flight spec) and
 *    memoizes every finished run in a shared cache.
 * 3. Read the results in submission order.
 *
 * Also shows registerProgram(): a custom DAXPY workload becomes
 * addressable by name like a suite program.
 */

#include <cstdio>

#include "src/api/engine.hh"
#include "src/api/sweep.hh"
#include "src/common/table.hh"
#include "src/workload/suite.hh"

int
main()
{
    using namespace mtv;

    // 1. A custom workload via the public kernel DSL, registered so
    //    RunSpecs can reference it by name.
    ProgramSpec daxpy = makeDaxpySpec(512 * 1024);
    registerProgram(daxpy);

    ExperimentEngine engine;  // one worker per hardware thread

    // 2. Run DAXPY alone on the reference (single-context) machine.
    const RunResult solo = engine.run(
        RunSpec::single(daxpy.name, MachineParams::reference(), 1.0));
    std::printf("daxpy: %llu instructions, %llu cycles\n",
                static_cast<unsigned long long>(solo.stats.dispatches),
                static_cast<unsigned long long>(solo.stats.cycles));

    // 3. A section 4.1 group run: swm256 measured against hydro2d on
    //    a 2-context machine. The engine computes the paper's speedup
    //    accounting (reference runs come from the shared cache).
    const RunResult pair = engine.run(RunSpec::group(
        {"swm256", "hydro2d"}, MachineParams::multithreaded(2)));

    Table t({"machine", "cycles", "mem-port", "VOPC", "speedup"});
    t.row()
        .add("reference/daxpy")
        .add(solo.stats.cycles)
        .add(solo.stats.memPortOccupation(), 3)
        .add(solo.stats.vopc(), 3)
        .add("1.00");
    t.row()
        .add("mth-2/sw+hy")
        .add(pair.stats.cycles)
        .add(pair.mthOccupation, 3)
        .add(pair.mthVopc, 3)
        .add(pair.speedup, 3);
    t.print();

    // 4. A miniature Figure 6: every Table 2 grouping of tomcatv at
    //    2 and 3 contexts, declared up front and run in parallel.
    SweepBuilder sweep;
    for (const int contexts : {2, 3})
        sweep.addGroupings("tomcatv", contexts,
                           MachineParams::multithreaded(contexts));
    const std::vector<RunResult> results = engine.runAll(sweep.specs());
    for (const auto &slice : sweep.slices()) {
        const GroupAverages avg = averageOf(slice, results);
        std::printf("tomcatv @ %d contexts: speedup %.3f "
                    "(%d groupings averaged)\n",
                    avg.contexts, avg.speedup, avg.runs);
    }
    std::printf("[%zu runs cached, %llu cache hits]\n",
                engine.cacheSize(),
                static_cast<unsigned long long>(engine.cacheHits()));
    return 0;
}
