/**
 * @file
 * Quickstart: build a DAXPY workload, run it on the reference machine
 * and on 2-context multithreaded machines, and print the headline
 * metrics (speedup needs two programs, so we pair DAXPY with the
 * swm256 suite program — the 30-second version of the paper's story).
 */

#include <cstdio>

#include "src/common/table.hh"
#include "src/core/sim.hh"
#include "src/driver/runner.hh"
#include "src/workload/suite.hh"

int
main()
{
    using namespace mtv;

    // 1. A custom workload via the public kernel DSL.
    const ProgramSpec daxpy = makeDaxpySpec(512 * 1024);
    SyntheticProgram program(daxpy, 1.0);
    std::printf("daxpy: %llu instructions\n",
                static_cast<unsigned long long>(program.count()));

    // 2. Run it alone on the reference (single-context) machine.
    VectorSim reference(MachineParams::reference());
    const SimStats ref = reference.runSingle(program);

    // 3. Run it together with swm256 on a 2-context machine.
    Runner runner(workloadDefaultScale);
    GroupResult pair = runner.runGroup({"swm256", "hydro2d"},
                                       MachineParams::multithreaded(2));

    Table t({"machine", "cycles", "mem-port", "VOPC", "speedup"});
    t.row()
        .add("reference/daxpy")
        .add(ref.cycles)
        .add(ref.memPortOccupation(), 3)
        .add(ref.vopc(), 3)
        .add("1.00");
    t.row()
        .add("mth-2/sw+hy")
        .add(pair.mth.cycles)
        .add(pair.mthOccupation, 3)
        .add(pair.mthVopc, 3)
        .add(pair.speedup, 3);
    t.print();
    return 0;
}
