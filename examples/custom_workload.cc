/**
 * @file
 * Example: define a custom vectorized workload with the kernel DSL,
 * register it with the experiment API, record it to a Dixie-style
 * trace file, replay the trace, and verify the simulator cannot tell
 * the two apart.
 *
 * The workload is a strip-mined 5-point stencil smoother — the kind
 * of loop the Perfect Club PDE codes are made of.
 */

#include <cstdio>

#include "src/api/engine.hh"
#include "src/core/sim.hh"
#include "src/trace/analyzer.hh"
#include "src/trace/trace_file.hh"
#include "src/workload/program.hh"
#include "src/workload/suite.hh"

int
main()
{
    using namespace mtv;

    // --- 1. Describe one loop nest with the body builder.
    BodyBuilder body;
    const int north = body.load();
    const int south = body.load();
    const int ns = body.arith(Opcode::VAdd, north, south);
    const int east = body.load();
    const int west = body.load();
    const int ew = body.arith(Opcode::VAdd, east, west);
    const int ring = body.arith(Opcode::VAdd, ns, ew);
    const int centre = body.load();
    const int scaled = body.arith(Opcode::VMul, ring, centre);
    const int result = body.arith(Opcode::VAdd, scaled, centre);
    body.store(result);

    KernelSpec smoother;
    smoother.name = "stencil5";
    smoother.tripCount = 1000;  // 8 strips: 7 x 128 + 104
    smoother.body = body.take();
    smoother.scalarPreamble = 3;
    smoother.scalarPerStrip = 3;

    // --- 2. Wrap it into a program (24 invocations worth of work).
    ProgramSpec spec;
    spec.name = "smoother";
    spec.abbrev = "sm";
    spec.suite = "example";
    spec.kernels.push_back(smoother);
    spec.vectorMillions =
        24.0 * smoother.vectorInstrsPerInvocation() / 1e6;
    spec.scalarMillions =
        30.0 * smoother.scalarInstrsPerInvocation() / 1e6;
    spec.vectorOpsMillions =
        24.0 * smoother.vectorOpsPerInvocation() / 1e6;
    spec.percentVect = 99.0;
    spec.avgVectorLength = smoother.averageVectorLength();

    SyntheticProgram live(spec, 1.0);
    const TraceStats stats = analyzeSource(live);
    std::printf("generated %llu instructions "
                "(%.1f%% vectorized, avg VL %.1f)\n",
                static_cast<unsigned long long>(live.count()),
                stats.percentVectorization(),
                stats.averageVectorLength());

    // --- 3. Registered programs are first-class experiment subjects:
    // the engine instantiates them by name like suite programs.
    registerProgram(spec);
    ExperimentEngine engine;
    const SimStats a = engine
                           .run(RunSpec::single(
                               "smoother",
                               MachineParams::reference(), 1.0))
                           .stats;

    // --- 4. Record to a Dixie-style binary trace and replay it.
    // Trace replay feeds the simulator directly (a trace file has no
    // suite name, so it stays below the RunSpec layer).
    const std::string path = "/tmp/smoother.mtv";
    writeTrace(live, path);
    TraceReader replay(path);
    std::printf("trace written: %s (%llu records)\n", path.c_str(),
                static_cast<unsigned long long>(replay.count()));

    VectorSim simReplay(MachineParams::reference());
    const SimStats b = simReplay.runSingle(replay);

    std::printf("live generator: %llu cycles, occupancy %.3f\n",
                static_cast<unsigned long long>(a.cycles),
                a.memPortOccupation());
    std::printf("trace replay:   %llu cycles, occupancy %.3f\n",
                static_cast<unsigned long long>(b.cycles),
                b.memPortOccupation());
    std::printf(a.cycles == b.cycles
                    ? "identical, as required: the simulator is "
                      "trace-driven\n"
                    : "MISMATCH: replay diverged from live run\n");
    std::remove(path.c_str());
    return a.cycles == b.cycles ? 0 : 1;
}
